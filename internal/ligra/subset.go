// Package ligra implements the Ligra programming model that Julienne
// extends (§2.1 of the paper): vertexSubsets and the edgeMap/vertexMap
// family of traversal primitives, including the direction-optimized
// (sparse push / dense pull) edge map and the additional primitives the
// paper adds — tagged subsets (vertexSubset_T), edgeMapSum and
// edgeMapFilter with optional packing.
package ligra

import (
	"julienne/internal/graph"
	"julienne/internal/parallel"
)

// VertexSubset is a subset of [0, n). It is stored either sparsely (a
// list of vertex ids) or densely (a boolean per vertex); conversions
// happen lazily when a traversal needs the other form, exactly as in
// Ligra. A VertexSubset is immutable after creation.
type VertexSubset struct {
	n      int
	sparse []graph.Vertex // valid iff dense == nil
	dense  []bool
	size   int
}

// Empty returns the empty subset of a universe of size n.
func Empty(n int) VertexSubset {
	return VertexSubset{n: n, sparse: []graph.Vertex{}}
}

// Single returns the subset {v} of a universe of size n.
func Single(n int, v graph.Vertex) VertexSubset {
	return VertexSubset{n: n, sparse: []graph.Vertex{v}, size: 1}
}

// FromSparse wraps a list of distinct vertex ids as a subset. The slice
// is adopted, not copied.
func FromSparse(n int, ids []graph.Vertex) VertexSubset {
	debugCheckSparse(n, ids)
	return VertexSubset{n: n, sparse: ids, size: len(ids)}
}

// FromDense wraps a dense membership array as a subset. The slice is
// adopted, not copied.
func FromDense(n int, member []bool) VertexSubset {
	size := parallel.Count(n, 0, func(i int) bool { return member[i] })
	return VertexSubset{n: n, dense: member, size: size}
}

// All returns the full universe [0, n).
func All(n int) VertexSubset {
	member := make([]bool, n)
	parallel.For(n, parallel.DefaultGrain, func(i int) { member[i] = true })
	return VertexSubset{n: n, dense: member, size: n}
}

// Universe returns n, the size of the underlying vertex universe.
func (s VertexSubset) Universe() int { return s.n }

// Size returns the number of vertices in the subset.
func (s VertexSubset) Size() int { return s.size }

// IsEmpty reports whether the subset is empty.
func (s VertexSubset) IsEmpty() bool { return s.size == 0 }

// IsDense reports which representation the subset currently holds.
func (s VertexSubset) IsDense() bool { return s.dense != nil }

// Sparse returns the subset as a list of vertex ids (converting from the
// dense form if needed; the result of a conversion is in increasing id
// order). Callers must not modify the returned slice.
func (s VertexSubset) Sparse() []graph.Vertex {
	if s.dense == nil {
		return s.sparse
	}
	return parallel.PackIndices(s.n, func(i int) bool { return s.dense[i] })
}

// Dense returns the subset as a membership array (converting from the
// sparse form if needed). Callers must not modify the returned slice.
func (s VertexSubset) Dense() []bool {
	if s.dense != nil {
		return s.dense
	}
	member := make([]bool, s.n)
	parallel.For(len(s.sparse), parallel.DefaultGrain, func(i int) {
		member[s.sparse[i]] = true
	})
	return member
}

// ForEach calls f on every member in parallel.
func (s VertexSubset) ForEach(f func(v graph.Vertex)) {
	if s.dense != nil {
		parallel.For(s.n, parallel.DefaultGrain, func(i int) {
			if s.dense[i] {
				f(graph.Vertex(i))
			}
		})
		return
	}
	parallel.For(len(s.sparse), parallel.DefaultGrain, func(i int) {
		f(s.sparse[i])
	})
}

// Contains reports membership. On a sparse subset this is O(|s|); it is
// meant for tests and assertions, not inner loops.
func (s VertexSubset) Contains(v graph.Vertex) bool {
	if s.dense != nil {
		return s.dense[v]
	}
	for _, u := range s.sparse {
		if u == v {
			return true
		}
	}
	return false
}

// outDegreeSum returns the sum of live out-degrees over the subset,
// the quantity Ligra's direction optimization thresholds on.
func (s VertexSubset) outDegreeSum(g graph.Graph) int64 {
	if s.dense != nil {
		return parallel.Sum(s.n, 0, func(i int) int64 {
			if s.dense[i] {
				return int64(g.OutDegree(graph.Vertex(i)))
			}
			return 0
		})
	}
	return parallel.Sum(len(s.sparse), 0, func(i int) int64 {
		return int64(g.OutDegree(s.sparse[i]))
	})
}

// Tagged is a vertexSubset with an associated value per member — the
// vertexSubset_T of §2.1. It is always sparse: the paper only produces
// tagged subsets as outputs of edgeMapReduce-style primitives, which are
// sparse by construction.
type Tagged[T any] struct {
	n    int
	IDs  []graph.Vertex
	Vals []T
}

// NewTagged wraps parallel id/value slices as a tagged subset.
func NewTagged[T any](n int, ids []graph.Vertex, vals []T) Tagged[T] {
	if len(ids) != len(vals) {
		panic("ligra: tagged subset length mismatch")
	}
	return Tagged[T]{n: n, IDs: ids, Vals: vals}
}

// Universe returns the size of the underlying vertex universe.
func (t Tagged[T]) Universe() int { return t.n }

// Size returns the number of members.
func (t Tagged[T]) Size() int { return len(t.IDs) }

// IsEmpty reports whether the subset is empty.
func (t Tagged[T]) IsEmpty() bool { return len(t.IDs) == 0 }

// At returns the i'th (vertex, value) pair — the paper's "function call
// operator" on vertexSubsets.
func (t Tagged[T]) At(i int) (graph.Vertex, T) { return t.IDs[i], t.Vals[i] }

// Untagged drops the values, yielding a plain VertexSubset that shares
// the id slice.
func (t Tagged[T]) Untagged() VertexSubset { return FromSparse(t.n, t.IDs) }

// TagMap builds a new tagged subset by applying f to each member of a
// plain subset, keeping only members for which f reports ok. It is the
// vertexMap of §2.1 generalized to produce values (used e.g. by
// ∆-stepping's Reset step).
func TagMap[T any](s VertexSubset, f func(v graph.Vertex) (T, bool)) Tagged[T] {
	ids := s.Sparse()
	type pair struct {
		id  graph.Vertex
		val T
	}
	out := parallel.MapFilter(len(ids), func(i int) (pair, bool) {
		v, ok := f(ids[i])
		return pair{ids[i], v}, ok
	})
	outIDs := make([]graph.Vertex, len(out))
	outVals := make([]T, len(out))
	parallel.For(len(out), parallel.DefaultGrain, func(i int) {
		outIDs[i] = out[i].id
		outVals[i] = out[i].val
	})
	return NewTagged(s.n, outIDs, outVals)
}

// TagMapTagged is TagMap over a tagged input: f sees each member and its
// value and may emit a new value. Used to chain tagged traversals
// (e.g. ∆-stepping: edgeMap output -> Reset -> updateBuckets input).
func TagMapTagged[T, U any](t Tagged[T], f func(v graph.Vertex, val T) (U, bool)) Tagged[U] {
	type pair struct {
		id  graph.Vertex
		val U
	}
	out := parallel.MapFilter(len(t.IDs), func(i int) (pair, bool) {
		v, ok := f(t.IDs[i], t.Vals[i])
		return pair{t.IDs[i], v}, ok
	})
	outIDs := make([]graph.Vertex, len(out))
	outVals := make([]U, len(out))
	parallel.For(len(out), parallel.DefaultGrain, func(i int) {
		outIDs[i] = out[i].id
		outVals[i] = out[i].val
	})
	return NewTagged(t.n, outIDs, outVals)
}
