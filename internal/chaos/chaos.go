// Package chaos is the failure-injection harness behind the
// julienne_chaos build tag. Production builds compile the no-op half
// of the Arm/Disarm/Point surface (chaos_off.go): Enabled is a false
// constant, every instrumentation site is guarded by it, and the whole
// package folds away to nothing. Chaos builds
// (`go test -tags julienne_chaos ./internal/chaos/...`) compile the
// live half (chaos_on.go), which executes a seeded, schedule-driven
// Plan at the instrumented sites:
//
//   - SiteWorker fires at the start of every parallel worker block
//     (parallel.Blocked / parallel.Workers), the place a user callback
//     runs — an injected panic here exercises the substrate's panic
//     containment exactly where a buggy callback would.
//   - SiteRound fires at every bucket round boundary (the entry of
//     bucket.(*Par).NextBucket) — delays here widen the windows the
//     race detector inspects, and forced cancellations exercise the
//     per-round cancellation points of the algorithm kernels.
//
// Sites are hit-counted atomically, so a Plan names its target as "the
// k-th hit", which is deterministic for a fixed schedule at P = 1 and
// schedule-driven (the same small set of interleavings) at higher P.
// The tests in this package fire plans mid-run and then assert the
// standing invariants: the panic surfaces as a single wrapped
// parallel.PanicError on the caller, no goroutines leak, the scratch
// pool stays balanced, and an immediate re-run is oracle-correct.
package chaos

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Site identifies one class of instrumentation point.
type Site uint8

const (
	// SiteWorker is the start of a parallel worker block.
	SiteWorker Site = iota
	// SiteRound is a bucket round boundary (NextBucket entry).
	SiteRound
	numSites
)

// String names the site for error messages.
func (s Site) String() string {
	switch s {
	case SiteWorker:
		return "worker"
	case SiteRound:
		return "round"
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// Plan is one injection schedule. Zero fields disable their injection;
// hit counts are 1-based, so PanicAtWorker = 1 panics in the first
// worker block executed after Arm.
type Plan struct {
	// PanicAtWorker panics with an Injected value at the k-th SiteWorker
	// hit. The panic propagates through the substrate's containment
	// machinery like any user-callback panic.
	PanicAtWorker int64
	// DelayAtRound sleeps for Delay at the k-th SiteRound hit,
	// simulating a straggler round (and pushing a run past its
	// deadline, when one is set).
	DelayAtRound int64
	// Delay is the sleep duration for DelayAtRound.
	Delay time.Duration
	// CancelAtRound invokes Cancel (once) at the k-th SiteRound hit,
	// simulating an external kill arriving mid-run.
	CancelAtRound int64
	// Cancel is the callback fired by CancelAtRound — typically a
	// context.CancelFunc.
	Cancel func()
}

// Injected is the value panicked by a PanicAtWorker injection. It
// implements error so recovered values read cleanly in test failures.
type Injected struct {
	Site Site
	Hit  int64
}

func (i Injected) Error() string {
	return fmt.Sprintf("chaos: injected panic at %s hit %d", i.Site, i.Hit)
}

// armed is the live schedule plus its per-site hit counters. It is
// only referenced by the chaos_on half; the off half never touches it.
type armed struct {
	plan     Plan
	hits     [numSites]atomic.Int64
	canceled atomic.Bool
}

// active holds the armed schedule; nil means no injection. A single
// atomic pointer keeps Point's disarmed fast path to one load.
var active atomic.Pointer[armed]
