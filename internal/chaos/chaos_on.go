//go:build julienne_chaos

package chaos

import "time"

// Enabled reports whether chaos injection is compiled in. Every
// instrumentation site is guarded by it, so production builds carry no
// chaos code at all.
const Enabled = true

// Arm installs plan as the active injection schedule, resetting all
// hit counters. Arming replaces any previous schedule.
func Arm(plan Plan) {
	active.Store(&armed{plan: plan})
}

// Disarm removes the active schedule; subsequent Point calls are
// no-ops until the next Arm.
func Disarm() {
	active.Store(nil)
}

// Point is one instrumentation site. Production call sites guard it
// with chaos.Enabled, so this body only ever runs in chaos builds.
func Point(s Site) {
	a := active.Load()
	if a == nil {
		return
	}
	hit := a.hits[s].Add(1)
	switch s {
	case SiteWorker:
		if k := a.plan.PanicAtWorker; k != 0 && hit == k {
			panic(Injected{Site: s, Hit: hit})
		}
	case SiteRound:
		if k := a.plan.DelayAtRound; k != 0 && hit == k && a.plan.Delay > 0 {
			time.Sleep(a.plan.Delay)
		}
		if k := a.plan.CancelAtRound; k != 0 && hit >= k && a.plan.Cancel != nil {
			// >= rather than ==: a delay injection on the same round may
			// reorder hits across goroutines; the CAS keeps it one-shot.
			if a.canceled.CompareAndSwap(false, true) {
				a.plan.Cancel()
			}
		}
	}
}
