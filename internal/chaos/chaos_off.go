//go:build !julienne_chaos

package chaos

// Enabled reports whether chaos injection is compiled in. False here:
// the production build. Instrumentation sites read it as a constant
// guard, so the calls below are never reached and the compiler drops
// them entirely.
const Enabled = false

// Arm is a no-op without the julienne_chaos tag.
func Arm(plan Plan) {}

// Disarm is a no-op without the julienne_chaos tag.
func Disarm() {}

// Point is a no-op without the julienne_chaos tag.
func Point(s Site) {}
