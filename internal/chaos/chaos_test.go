//go:build julienne_chaos

package chaos_test

// The chaos proptest family (DESIGN.md §9): seeded, schedule-driven
// injections fire mid-run — a panic inside a parallel worker, a delay
// at a round boundary, a forced cancellation at round k — and after
// every run the suite asserts the full failure-semantics contract:
//
//   1. no goroutine leaks (harness.LeakCheck);
//   2. the scratch pool is balanced (parallel.ScratchStats);
//   3. with the julienne_debug tag, the bucket structure's invariant
//      checks stay armed throughout (they run inside NextBucket);
//   4. an immediate re-run on the same graph, injections disarmed, is
//      oracle-correct — a contained failure leaves no poisoned state.
//
// Build-gated behind julienne_chaos so the injection points (and these
// tests) cost nothing in production binaries.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strconv"
	"testing"
	"time"

	"julienne/internal/algo/kcore"
	"julienne/internal/algo/sssp"
	"julienne/internal/bucket"
	"julienne/internal/chaos"
	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/harness"
	"julienne/internal/obs"
	"julienne/internal/parallel"
	"julienne/internal/rng"
)

func testGraph(seed uint64) *graph.CSR {
	n := 2000
	if testing.Short() {
		n = 600
	}
	return gen.RMAT(n, 8*n, true, seed)
}

// flightDumpRecorder arms the always-on flight recorder for one chaos
// run and dumps its tail if the test fails, so a failed invariant
// check ships a post-mortem of the rounds that led up to it.
func flightDumpRecorder(t *testing.T) *obs.Recorder {
	t.Helper()
	rec := obs.NewRecorder()
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		var buf bytes.Buffer
		obs.WriteFlightText(&buf, rec.FlightTail(16))
		t.Logf("chaos post-mortem:\n%s", buf.String())
	})
	return rec
}

func checkInvariants(t *testing.T) {
	t.Helper()
	if b := parallel.ScratchStats(); !b.Balanced() {
		t.Errorf("scratch pool imbalance: %d gets, %d puts", b.Gets, b.Puts)
	}
}

// expectPanicError runs f and returns the *parallel.PanicError it
// re-raises, or nil if f returned cleanly.
func expectPanicError(t *testing.T, f func()) (pe *parallel.PanicError) {
	t.Helper()
	defer func() {
		if v := recover(); v != nil {
			var ok bool
			pe, ok = v.(*parallel.PanicError)
			if !ok {
				t.Fatalf("panic value is %T (%v), want *parallel.PanicError", v, v)
			}
		}
	}()
	f()
	return nil
}

func corenessEqual(t *testing.T, got, want []uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("coreness length %d, want %d", len(got), len(want))
	}
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("coreness[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

// TestInjectedWorkerPanic fires a panic inside a parallel worker in the
// middle of a k-core run and asserts the whole contract.
func TestInjectedWorkerPanic(t *testing.T) {
	defer harness.LeakCheck(t)()
	g := testGraph(1)
	want := kcore.CorenessBZ(g)
	rec := flightDumpRecorder(t)
	for _, hit := range []int64{1, 7, 40} {
		chaos.Arm(chaos.Plan{PanicAtWorker: hit})
		pe := expectPanicError(t, func() { kcore.Coreness(g, kcore.Options{Recorder: rec}) })
		chaos.Disarm()
		if pe == nil {
			t.Fatalf("hit %d: injected panic did not surface", hit)
		}
		inj, ok := pe.Value.(chaos.Injected)
		if !ok {
			t.Fatalf("hit %d: PanicError.Value = %T (%v), want chaos.Injected", hit, pe.Value, pe.Value)
		}
		if inj.Site != chaos.SiteWorker || inj.Hit != hit {
			t.Errorf("hit %d: injected at %v hit %d", hit, inj.Site, inj.Hit)
		}
		var asInj chaos.Injected
		if !errors.As(pe, &asInj) {
			t.Errorf("hit %d: errors.As(pe, *chaos.Injected) = false (Unwrap broken)", hit)
		}
		checkInvariants(t)
		// Contained failure leaves no poisoned state: an immediate
		// re-run on the same graph is oracle-correct.
		clean := kcore.Coreness(g, kcore.Options{})
		if clean.Err != nil {
			t.Fatalf("hit %d: clean re-run errored: %v", hit, clean.Err)
		}
		corenessEqual(t, clean.Coreness, want)
		checkInvariants(t)
	}
}

// TestForcedCancellationAtRound forces a context cancellation at round
// k from inside the round boundary and asserts the typed error, the
// partial stats, and an oracle-correct re-run.
func TestForcedCancellationAtRound(t *testing.T) {
	defer harness.LeakCheck(t)()
	g := testGraph(2)
	want := kcore.CorenessBZ(g)
	full := kcore.Coreness(g, kcore.Options{})
	if full.Rounds < 3 {
		t.Fatalf("test graph peels in %d rounds; need >= 3", full.Rounds)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := flightDumpRecorder(t)
	chaos.Arm(chaos.Plan{CancelAtRound: 2, Cancel: cancel})
	res := kcore.Coreness(g, kcore.Options{Ctx: ctx, Recorder: rec})
	chaos.Disarm()
	if res.Err == nil {
		t.Fatal("canceled run returned nil Err")
	}
	if !errors.Is(res.Err, obs.ErrCanceled) {
		t.Errorf("errors.Is(Err, ErrCanceled) = false: %v", res.Err)
	}
	var c *obs.Canceled
	if !errors.As(res.Err, &c) {
		t.Fatalf("Err is %T, want *obs.Canceled", res.Err)
	}
	if c.Algo != "kcore" {
		t.Errorf("Canceled.Algo = %q, want kcore", c.Algo)
	}
	if c.Rounds < 1 || c.Rounds >= full.Rounds {
		t.Errorf("Canceled.Rounds = %d, want partial progress in [1, %d)", c.Rounds, full.Rounds)
	}
	if !errors.Is(res.Err, context.Canceled) {
		t.Errorf("cause not surfaced: errors.Is(Err, context.Canceled) = false")
	}
	if len(c.Tail) == 0 || int64(len(c.Tail)) > c.Rounds {
		t.Errorf("Canceled.Tail has %d records for %d rounds; want a non-empty tail", len(c.Tail), c.Rounds)
	} else if last := c.Tail[len(c.Tail)-1]; last.Algo != "kcore" || last.Round != c.Rounds {
		t.Errorf("Canceled.Tail ends at %s round %d, want kcore round %d", last.Algo, last.Round, c.Rounds)
	}
	checkInvariants(t)
	clean := kcore.Coreness(g, kcore.Options{})
	if clean.Err != nil {
		t.Fatalf("clean re-run errored: %v", clean.Err)
	}
	corenessEqual(t, clean.Coreness, want)
}

// TestDelayAtRoundTripsDeadline injects a delay at a round boundary so
// a short deadline expires mid-run; the run must stop with the
// DeadlineExceeded cause, and wBFS must be re-runnable.
func TestDelayAtRoundTripsDeadline(t *testing.T) {
	defer harness.LeakCheck(t)()
	g := gen.UniformWeights(testGraph(3), 1, 16, 3)
	want := sssp.DijkstraHeap(g, 0)
	rec := flightDumpRecorder(t)
	chaos.Arm(chaos.Plan{DelayAtRound: 2, Delay: 50 * time.Millisecond})
	res := sssp.WBFS(g, 0, sssp.Options{Recorder: rec, Deadline: harness.DeadlineIn(5 * time.Millisecond)})
	chaos.Disarm()
	if res.Err == nil {
		t.Fatal("deadline run returned nil Err")
	}
	if !errors.Is(res.Err, obs.ErrCanceled) || !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Errorf("Err = %v, want ErrCanceled wrapping DeadlineExceeded", res.Err)
	}
	checkInvariants(t)
	clean := sssp.WBFS(g, 0, sssp.Options{})
	if clean.Err != nil {
		t.Fatalf("clean re-run errored: %v", clean.Err)
	}
	for v := range clean.Dist {
		if clean.Dist[v] != want.Dist[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, clean.Dist[v], want.Dist[v])
		}
	}
}

// TestForcedCancellationMidFusedRound forces a cancellation at a fused
// round boundary of a bucket-fusion wBFS run on a weighted grid (the
// large-diameter family fusion exists for) and asserts the failure
// contract holds with the fused machinery engaged: typed error with
// partial progress, balanced scratch pool, no goroutine leaks, and
// immediate fused and unfused re-runs that are oracle-correct — no
// active span, undrained lazy buffer, or leaked scratch slab survives
// the cancellation.
func TestForcedCancellationMidFusedRound(t *testing.T) {
	defer harness.LeakCheck(t)()
	rows, cols := 40, 50
	if testing.Short() {
		rows, cols = 20, 30
	}
	g := gen.UniformWeights(gen.Grid2D(rows, cols), 1, 16, 7)
	want := sssp.DijkstraHeap(g, 0)
	fused := sssp.Options{Fusion: bucket.Fusion{MaxFrontier: 64}}
	full := sssp.WBFS(g, 0, fused)
	if full.Err != nil || full.Rounds < 3 {
		t.Fatalf("fused wBFS baseline: err=%v rounds=%d; need a clean run of >= 3 rounds",
			full.Err, full.Rounds)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := flightDumpRecorder(t)
	opt := fused
	opt.Ctx = ctx
	opt.Recorder = rec
	chaos.Arm(chaos.Plan{CancelAtRound: 2, Cancel: cancel})
	res := sssp.WBFS(g, 0, opt)
	chaos.Disarm()
	if res.Err == nil {
		t.Fatal("canceled fused run returned nil Err")
	}
	var c *obs.Canceled
	if !errors.As(res.Err, &c) || !errors.Is(res.Err, obs.ErrCanceled) {
		t.Fatalf("Err = %v (%T), want *obs.Canceled wrapping ErrCanceled", res.Err, res.Err)
	}
	if c.Rounds < 1 || c.Rounds >= full.Rounds {
		t.Errorf("Canceled.Rounds = %d, want partial progress in [1, %d)", c.Rounds, full.Rounds)
	}
	checkInvariants(t)
	for _, o := range []sssp.Options{fused, {}} {
		clean := sssp.WBFS(g, 0, o)
		if clean.Err != nil {
			t.Fatalf("clean re-run errored: %v", clean.Err)
		}
		for v := range clean.Dist {
			if clean.Dist[v] != want.Dist[v] {
				t.Fatalf("dist[%d] = %d, want %d", v, clean.Dist[v], want.Dist[v])
			}
		}
	}
	checkInvariants(t)
}

// TestSeededSweep is the randomized proptest family: each seed derives
// an injection plan (site, mode, hit count) from rng.Hash64 and fires
// it against a k-core run, then asserts the contract. The sweep size
// defaults small; the nightly job raises it via JULIENNE_CHAOS_SEEDS.
func TestSeededSweep(t *testing.T) {
	defer harness.LeakCheck(t)()
	seeds := 4
	if testing.Short() {
		seeds = 2
	}
	if s := os.Getenv("JULIENNE_CHAOS_SEEDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("JULIENNE_CHAOS_SEEDS=%q: %v", s, err)
		}
		seeds = v
	}
	g := testGraph(4)
	want := kcore.CorenessBZ(g)
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(strconv.Itoa(seed), func(t *testing.T) {
			rec := flightDumpRecorder(t)
			h := rng.Hash64(uint64(seed) + 0xc4a05)
			mode := h % 3
			hit := int64(1 + (h>>8)%24)
			round := int64(1 + (h>>32)%3)
			switch mode {
			case 0: // worker panic
				chaos.Arm(chaos.Plan{PanicAtWorker: hit})
				pe := expectPanicError(t, func() { kcore.Coreness(g, kcore.Options{Recorder: rec}) })
				chaos.Disarm()
				if pe == nil {
					t.Fatalf("seed %d: panic at worker hit %d did not surface", seed, hit)
				}
			case 1: // forced cancellation at round k
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				chaos.Arm(chaos.Plan{CancelAtRound: round, Cancel: cancel})
				res := kcore.Coreness(g, kcore.Options{Ctx: ctx, Recorder: rec})
				chaos.Disarm()
				if res.Err == nil || !errors.Is(res.Err, obs.ErrCanceled) {
					t.Fatalf("seed %d: cancel at round %d: Err = %v", seed, round, res.Err)
				}
			case 2: // delay at a round boundary + deadline
				chaos.Arm(chaos.Plan{DelayAtRound: round, Delay: 20 * time.Millisecond})
				res := kcore.Coreness(g, kcore.Options{
					Recorder: rec,
					Deadline: harness.DeadlineIn(2 * time.Millisecond),
				})
				chaos.Disarm()
				if res.Err == nil || !errors.Is(res.Err, context.DeadlineExceeded) {
					t.Fatalf("seed %d: delay at round %d: Err = %v", seed, round, res.Err)
				}
			}
			checkInvariants(t)
			clean := kcore.Coreness(g, kcore.Options{})
			if clean.Err != nil {
				t.Fatalf("seed %d: clean re-run errored: %v", seed, clean.Err)
			}
			corenessEqual(t, clean.Coreness, want)
		})
	}
}

// TestDisarmedPointsAreInert pins that an armed-then-disarmed process
// runs injections-free (the Arm state is global; tests must not bleed).
func TestDisarmedPointsAreInert(t *testing.T) {
	chaos.Arm(chaos.Plan{PanicAtWorker: 1})
	chaos.Disarm()
	g := testGraph(5)
	res := kcore.Coreness(g, kcore.Options{})
	if res.Err != nil {
		t.Fatalf("disarmed run errored: %v", res.Err)
	}
	checkInvariants(t)
}
