package julienne_test

import (
	"fmt"

	"julienne"
)

// ExampleKCore computes the coreness decomposition of a small graph:
// a triangle with a pendant vertex.
func ExampleKCore() {
	g := julienne.FromEdges(4, []julienne.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3},
	}, julienne.BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})
	fmt.Println(julienne.KCore(g))
	// Output: [2 2 2 1]
}

// ExampleWBFS runs weighted BFS on a weighted path 0 -5- 1 -3- 2.
func ExampleWBFS() {
	g := julienne.FromEdges(3, []julienne.Edge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 3},
	}, julienne.BuildOptions{Weighted: true, Symmetrize: true, DropSelfLoops: true, Dedup: true})
	fmt.Println(julienne.WBFS(g, 0))
	// Output: [0 5 8]
}

// ExampleNewBuckets drives the bucket structure directly: three
// identifiers in buckets 2, 0 and 5 come out in increasing order.
func ExampleNewBuckets() {
	d := []julienne.BucketID{2, 0, 5}
	b := julienne.NewBuckets(3, func(i uint32) julienne.BucketID { return d[i] },
		julienne.IncreasingBuckets, julienne.BucketOptions{})
	for {
		id, ids := b.NextBucket()
		if id == julienne.NilBucket {
			break
		}
		fmt.Println(id, ids)
	}
	// Output:
	// 0 [1]
	// 2 [0]
	// 5 [2]
}

// ExampleApproxSetCover solves a tiny instance: set 0 covers elements
// {3,4,5}, set 1 covers {4,5}, set 2 covers {6}.
func ExampleApproxSetCover() {
	g := julienne.FromEdges(7, []julienne.Edge{
		{U: 0, V: 3}, {U: 0, V: 4}, {U: 0, V: 5},
		{U: 1, V: 4}, {U: 1, V: 5},
		{U: 2, V: 6},
	}, julienne.DefaultBuild)
	res := julienne.ApproxSetCover(g, 3, julienne.SetCoverOptions{})
	fmt.Println(res.InCover, res.CoverSize)
	// Output: [true false true] 2
}

// ExampleDeltaStepping shows the ∆ parameter trading rounds for work.
func ExampleDeltaStepping() {
	g := julienne.FromEdges(3, []julienne.Edge{
		{U: 0, V: 1, W: 10}, {U: 1, V: 2, W: 10}, {U: 0, V: 2, W: 25},
	}, julienne.BuildOptions{Weighted: true, Symmetrize: true, DropSelfLoops: true, Dedup: true})
	fmt.Println(julienne.DeltaStepping(g, 0, 8))
	// Output: [0 10 20]
}

// ExampleDensestSubgraph finds the densest part of a clique with a
// pendant path attached.
func ExampleDensestSubgraph() {
	edges := []julienne.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3},
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}, // K4
		{U: 3, V: 4}, {U: 4, V: 5}, // pendant path
	}
	g := julienne.FromEdges(6, edges,
		julienne.BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})
	res := julienne.DensestSubgraph(g)
	fmt.Println(len(res.Vertices), res.Density)
	// Output: 4 1.5
}
