#!/bin/sh
# obs-demo: end-to-end smoke test of the observability plane.
#
# Builds cmd/kcore, runs it on a generated RMAT graph with the -http
# debug surface bound to an ephemeral port, scrapes /metrics until the
# round-latency histogram is non-empty, sanity-checks /debug/obs, and
# shuts the process down. Exits non-zero if the scrape never sees a
# populated histogram. Used by `make obs-demo` and the bench-smoke CI
# job; needs only a Go toolchain and curl.
set -eu

workdir=$(mktemp -d)
log="$workdir/kcore.log"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "obs-demo: building cmd/kcore"
go build -o "$workdir/kcore" ./cmd/kcore

# -http :0 binds an ephemeral port; the CLI reports the bound address
# on stderr as "obs: serving http://HOST:PORT/metrics ...". kcore keeps
# serving after the run completes until interrupted, so the surface
# stays up for scraping.
"$workdir/kcore" -gen rmat -n 4096 -m 32768 -http 127.0.0.1:0 >"$log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|.*obs: serving http://\([^/]*\)/metrics.*|\1|p' "$log" | head -n 1)
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "obs-demo: kcore exited before binding -http:" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "obs-demo: never saw the serving line in kcore output:" >&2
    cat "$log" >&2
    exit 1
fi
echo "obs-demo: scraping http://$addr/metrics"

count=0
for _ in $(seq 1 50); do
    count=$(curl -fsS "http://$addr/metrics" \
        | sed -n 's/^julienne_round_latency_ns_count \([0-9]*\)$/\1/p')
    [ -n "$count" ] && [ "$count" -gt 0 ] && break
    count=0
    sleep 0.2
done
if [ "$count" -eq 0 ]; then
    echo "obs-demo: julienne_round_latency_ns_count never became positive" >&2
    curl -fsS "http://$addr/metrics" >&2 || true
    exit 1
fi
echo "obs-demo: round-latency histogram has $count samples"

# /debug/obs must serve JSON carrying histogram summaries and the
# flight-recorder tail.
debug=$(curl -fsS "http://$addr/debug/obs")
for key in '"histograms"' '"flight"' '"round.latency_ns"'; do
    case "$debug" in
    *"$key"*) ;;
    *)
        echo "obs-demo: /debug/obs missing $key:" >&2
        echo "$debug" >&2
        exit 1
        ;;
    esac
done
echo "obs-demo: /debug/obs carries histograms and flight tail"
echo "obs-demo: ok"
