#!/bin/sh
# serve-smoke: end-to-end smoke test of the graph analytics service.
#
# Builds cmd/served and cmd/servedload with -race, boots served on an
# ephemeral port with a generated grid graph, drives it with the load
# driver (queries + async jobs), checks the report carries latency
# quantiles, scrapes /metrics for the serve counters, then sends
# SIGTERM and asserts the process drains and exits cleanly. Used by
# `make serve-smoke` and CI; needs only a Go toolchain and curl.
# DESIGN.md §12 documents the serving architecture.
set -eu

workdir=$(mktemp -d)
log="$workdir/served.log"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building cmd/served and cmd/servedload (-race)"
go build -race -o "$workdir/served" ./cmd/served
go build -race -o "$workdir/servedload" ./cmd/servedload

"$workdir/served" -addr 127.0.0.1:0 -gen grid -rows 64 -cols 64 \
    -drain 5s >"$log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|.*served: serving http://\([^/]*\)/.*|\1|p' "$log" | head -n 1)
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: served exited before binding:" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "serve-smoke: never saw the serving line in served output:" >&2
    cat "$log" >&2
    exit 1
fi
echo "serve-smoke: driving http://$addr/"

"$workdir/servedload" -addr "$addr" -duration 2s -conc 4 -jobs \
    -out "$workdir/bench.json"

# The report must carry per-endpoint throughput and quantiles.
for key in '"qps"' '"p50_ns"' '"p99_ns"' '"sssp"' '"coreness"'; do
    case "$(cat "$workdir/bench.json")" in
    *"$key"*) ;;
    *)
        echo "serve-smoke: load report missing $key:" >&2
        cat "$workdir/bench.json" >&2
        exit 1
        ;;
    esac
done
echo "serve-smoke: load report carries qps and latency quantiles"

# The server's own metrics surface must have counted the queries.
requests=$(curl -fsS "http://$addr/metrics" \
    | sed -n 's/^julienne_serve_requests \([0-9]*\)$/\1/p')
if [ -z "$requests" ] || [ "$requests" -eq 0 ]; then
    echo "serve-smoke: julienne_serve_requests not positive on /metrics" >&2
    curl -fsS "http://$addr/metrics" >&2 || true
    exit 1
fi
echo "serve-smoke: server counted $requests requests"

# SIGTERM must drain and exit zero within the budget.
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
if [ "$status" -ne 0 ]; then
    echo "serve-smoke: served exited $status after SIGTERM:" >&2
    cat "$log" >&2
    exit 1
fi
case "$(cat "$log")" in
*"served: drained, exiting"*) ;;
*)
    echo "serve-smoke: no drain line in served output:" >&2
    cat "$log" >&2
    exit 1
    ;;
esac
echo "serve-smoke: drained cleanly on SIGTERM"
echo "serve-smoke: ok"
