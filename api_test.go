package julienne

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"sync/atomic"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	g := RMAT(1<<10, 8000, true, 42)
	if err := ValidateGraph(g); err != nil {
		t.Fatal(err)
	}
	cores := KCore(g)
	if len(cores) != g.NumVertices() {
		t.Fatal("coreness length")
	}
	want := KCoreBZ(g)
	for v := range cores {
		if cores[v] != want[v] {
			t.Fatalf("coreness[%d] mismatch", v)
		}
	}
	wg := LogWeights(g, 1)
	dist := WBFS(wg, 0)
	ref := Dijkstra(wg, 0)
	for v := range dist {
		if dist[v] != ref.Dist[v] {
			t.Fatalf("dist[%d] mismatch", v)
		}
	}
}

func TestBucketsFacade(t *testing.T) {
	d := []BucketID{2, 0, 1, NilBucket}
	get := func(i uint32) BucketID { return d[i] }
	for _, b := range []Buckets{
		NewBuckets(4, get, IncreasingBuckets, BucketOptions{}),
		NewSequentialBuckets(4, get, IncreasingBuckets),
	} {
		var order []BucketID
		for {
			id, ids := b.NextBucket()
			if id == NilBucket {
				break
			}
			order = append(order, id)
			if len(ids) != 1 {
				t.Fatalf("bucket %d size %d", id, len(ids))
			}
		}
		if len(order) != 3 || order[0] != 0 || order[2] != 2 {
			t.Fatalf("order %v", order)
		}
		if b.Stats().Extracted != 3 {
			t.Fatal("stats")
		}
	}
}

func TestEdgeMapFacade(t *testing.T) {
	g := Grid2D(4, 4)
	visited := make([]uint32, 16)
	visited[0] = 1
	frontier := SingleSubset(16, 0)
	count := 1
	for !frontier.IsEmpty() {
		frontier = EdgeMap(g, frontier,
			func(v Vertex) bool { return atomic.LoadUint32(&visited[v]) == 0 },
			func(s, d Vertex, w Weight) bool {
				return atomic.CompareAndSwapUint32(&visited[d], 0, 1)
			}, EdgeMapOptions{NoDense: true})
		count += frontier.Size()
	}
	if count != 16 {
		t.Fatalf("BFS via facade covered %d vertices", count)
	}
}

func TestSetCoverFacade(t *testing.T) {
	inst := NewSetCoverInstance(50, 400, 3, 9)
	res := ApproxSetCover(inst.Graph, inst.Sets, SetCoverOptions{})
	if err := ValidateCover(inst.Graph, inst.Sets, res.InCover); err != nil {
		t.Fatal(err)
	}
	greedy := SetCoverGreedy(inst.Graph, inst.Sets)
	pbbs := SetCoverPBBS(inst.Graph, inst.Sets, SetCoverOptions{})
	if greedy.CoverSize == 0 || pbbs.CoverSize != res.CoverSize {
		t.Fatalf("cover sizes: approx=%d pbbs=%d greedy=%d",
			res.CoverSize, pbbs.CoverSize, greedy.CoverSize)
	}
}

func TestCompressedFacade(t *testing.T) {
	g := RMAT(1<<9, 4000, true, 5)
	c := Compress(g)
	a := KCore(g)
	b := KCore(c)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("compressed graph changed coreness")
		}
	}
}

func TestGraphIOFacade(t *testing.T) {
	g := LogWeights(Grid2D(6, 6), 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGraph(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != g.NumEdges() || !got.Weighted() {
		t.Fatal("round trip lost data")
	}
	var buf bytes.Buffer
	if err := WriteGraphText(&buf, g); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadGraphText(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if got2.NumEdges() != g.NumEdges() {
		t.Fatal("text round trip lost edges")
	}
}

func TestMiscFacade(t *testing.T) {
	g := Grid2D(8, 8)
	if Eccentricity(g, 0) != 14 {
		t.Fatalf("ecc=%d", Eccentricity(g, 0))
	}
	res := BFS(g, 0)
	if res.Level[63] != 14 {
		t.Fatal("BFS level")
	}
	if Rho(g) == 0 {
		t.Fatal("rho")
	}
	w := HeavyWeights(g, 1)
	a := DeltaStepping(w, 0, 32768)
	b := DeltaSteppingBins(w, 0, 32768)
	c := DeltaSteppingLH(w, 0, 32768)
	d := BellmanFord(w, 0)
	e := Dial(LogWeights(g, 1), 0)
	_ = e
	for v := range a {
		if a[v] != b.Dist[v] || a[v] != c.Dist[v] || a[v] != d.Dist[v] {
			t.Fatal("SSSP mismatch")
		}
	}
	dir := Symmetrized(FromEdges(3, []Edge{{U: 0, V: 1}}, DefaultBuild))
	if !dir.Symmetric() {
		t.Fatal("Symmetrized")
	}
	kr := KCoreFull(g, BucketOptions{OpenBuckets: 4})
	if kr.Rounds == 0 {
		t.Fatal("KCoreFull")
	}
	if KCoreLigra(g).Coreness[0] != kr.Coreness[0] {
		t.Fatal("ligra kcore")
	}
	full := DeltaSteppingFull(w, 0, 32768, BucketOptions{})
	if full.Rounds == 0 {
		t.Fatal("DeltaSteppingFull")
	}
	sub := SparseSubset(4, []Vertex{1, 2})
	if sub.Size() != 2 || EmptySubset(4).Size() != 0 || AllVertices(4).Size() != 4 {
		t.Fatal("subset constructors")
	}
	dn := DenseSubset(3, []bool{true, false, true})
	if dn.Size() != 2 {
		t.Fatal("DenseSubset")
	}
	rr := RandomRegular(100, 4, false, 1)
	if rr.NumVertices() != 100 {
		t.Fatal("RandomRegular")
	}
	er := ErdosRenyi(100, 300, true, 1)
	if er.NumEdges() == 0 {
		t.Fatal("ErdosRenyi")
	}
	cl := ChungLu(100, 500, 2.5, true, 1)
	if cl.NumEdges() == 0 {
		t.Fatal("ChungLu")
	}
	uw := UniformWeights(g, 1, 5, 1)
	if !uw.Weighted() {
		t.Fatal("UniformWeights")
	}
}

func TestNewFacadeFeatures(t *testing.T) {
	// Connected components.
	g := FromEdges(6, []Edge{{U: 0, V: 1}, {U: 2, V: 3}}, BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})
	labels := ConnectedComponents(g)
	if CountComponents(labels) != 4 {
		t.Fatalf("components=%d want 4", CountComponents(labels))
	}
	// k-core extraction.
	k5 := Grid2D(5, 5)
	cores := KCore(k5)
	sub := ExtractCore(k5, cores, 2)
	if sub.Graph.NumVertices() == 0 {
		t.Fatal("2-core of grid empty")
	}
	// Weighted set cover.
	inst := NewSetCoverInstance(60, 400, 3, 5)
	costs := make([]float64, inst.Sets)
	for i := range costs {
		costs[i] = 1 + float64(i%5)
	}
	res := ApproxWeightedSetCover(inst.Graph, inst.Sets, costs, SetCoverOptions{})
	if err := ValidateCover(inst.Graph, inst.Sets, res.InCover); err != nil {
		t.Fatal(err)
	}
	greedy := GreedyWeightedSetCover(inst.Graph, inst.Sets, costs)
	if greedy.Cost <= 0 || res.Cost <= 0 {
		t.Fatal("costs not populated")
	}
	// Set cover over a compressed instance through the facade.
	c := Compress(inst.Graph)
	onC := ApproxSetCoverOn(c.Clone(), inst.Sets, SetCoverOptions{})
	if err := ValidateCover(inst.Graph, inst.Sets, onC.InCover); err != nil {
		t.Fatal(err)
	}
	// VertexMap / VertexFilter.
	vm := VertexMap(SparseSubset(5, []Vertex{1, 2, 3}), func(v Vertex) bool { return v != 2 })
	if vm.Size() != 2 {
		t.Fatal("VertexMap facade")
	}
	vf := VertexFilter(AllVertices(5), func(v Vertex) bool { return v < 2 })
	if vf.Size() != 2 {
		t.Fatal("VertexFilter facade")
	}
	// Edge-list IO.
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, BuildOptions{DropSelfLoops: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatal("edge list round trip")
	}
}

func TestTrianglesAndTrussFacade(t *testing.T) {
	// K4 plus a pendant: 4 triangles; K4 edges have trussness 4.
	edges := []Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3},
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
		{U: 3, V: 4},
	}
	g := FromEdges(5, edges, BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})
	if CountTriangles(g) != 4 {
		t.Fatalf("triangles=%d want 4", CountTriangles(g))
	}
	pv := TrianglesPerVertex(g)
	if pv[0] != 3 || pv[4] != 0 {
		t.Fatalf("per-vertex %v", pv)
	}
	if cc := ClusteringCoefficient(g); cc <= 0 || cc > 1 {
		t.Fatalf("clustering %v", cc)
	}
	tr := KTruss(g)
	if tr.MaxTrussness() != 4 {
		t.Fatalf("max trussness %d want 4", tr.MaxTrussness())
	}
	// The pendant edge has trussness 2.
	found := false
	for i := range tr.Trussness {
		if tr.EdgeV[i] == 4 {
			found = true
			if tr.Trussness[i] != 2 {
				t.Fatalf("pendant trussness %d", tr.Trussness[i])
			}
		}
	}
	if !found {
		t.Fatal("pendant edge missing from decomposition")
	}
}

func TestObservabilityFacade(t *testing.T) {
	g := RMAT(1<<10, 8000, true, 42)

	rec := NewRecorder()
	var observed []RoundMetrics
	rec.OnRound(func(m RoundMetrics) { observed = append(observed, m) })
	res := KCoreWithOptions(g, KCoreOptions{Recorder: rec})

	if int64(len(observed)) != res.Rounds {
		t.Fatalf("observed %d rounds, result says %d", len(observed), res.Rounds)
	}
	if rec.Counter("bucket.extracted") != res.BucketStats.Extracted {
		t.Fatalf("counter extracted=%d, stats=%d",
			rec.Counter("bucket.extracted"), res.BucketStats.Extracted)
	}
	var frontierSum int64
	for _, m := range observed {
		if m.Algo != "kcore" {
			t.Fatalf("round algo %q", m.Algo)
		}
		frontierSum += int64(m.FrontierSize)
	}
	if frontierSum != res.BucketStats.Extracted {
		t.Fatalf("frontier sum %d != extracted %d", frontierSum, res.BucketStats.Extracted)
	}

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	spans := 0
	for _, ev := range tf.TraceEvents {
		if ev.Phase == "X" && ev.Name == "kcore.round" {
			spans++
		}
	}
	if int64(spans) != res.Rounds {
		t.Fatalf("trace has %d kcore.round spans, want %d", spans, res.Rounds)
	}

	// The instrumented run must compute the same answer as the plain one.
	plain := KCore(g)
	for v := range plain {
		if res.Coreness[v] != plain[v] {
			t.Fatalf("coreness[%d] differs under instrumentation", v)
		}
	}

	wg := LogWeights(g, 1)
	rec2 := NewRecorder()
	sres := DeltaSteppingWithOptions(wg, 0, 4, SSSPOptions{Recorder: rec2})
	if rec2.NumRounds() == 0 || int64(rec2.NumRounds()) != sres.Rounds {
		t.Fatalf("sssp rounds recorded=%d, result=%d", rec2.NumRounds(), sres.Rounds)
	}
	ref := Dijkstra(wg, 0)
	for v := range sres.Dist {
		if sres.Dist[v] != ref.Dist[v] {
			t.Fatalf("dist[%d] differs under instrumentation", v)
		}
	}
	if wres := WBFSWithOptions(wg, 0, SSSPOptions{Recorder: NewRecorder()}); wres.Dist[0] != 0 {
		t.Fatal("wbfs with recorder")
	}

	// Nil recorder through the public options must be a no-op.
	if nr := KCoreWithOptions(g, KCoreOptions{}); nr.Rounds != res.Rounds {
		t.Fatal("uninstrumented run diverged")
	}
}

func TestVerifyFacade(t *testing.T) {
	g := Symmetrized(ErdosRenyi(40, 120, true, 7))

	coreness := KCore(g)
	if err := VerifyKCore(g, coreness); err != nil {
		t.Fatalf("VerifyKCore rejected a correct result: %v", err)
	}
	bad := append([]uint32(nil), coreness...)
	if len(bad) > 0 {
		bad[0] += 5
		if err := VerifyKCore(g, bad); err == nil {
			t.Fatal("VerifyKCore accepted corrupted coreness")
		}
	}

	wg := UniformWeights(g, 1, 8, 3)
	dist := DeltaStepping(wg, 0, 4)
	if err := VerifySSSP(wg, 0, dist); err != nil {
		t.Fatalf("VerifySSSP rejected a correct result: %v", err)
	}
	badDist := append([]int64(nil), dist...)
	badDist[len(badDist)-1]++
	if err := VerifySSSP(wg, 0, badDist); err == nil {
		t.Fatal("VerifySSSP accepted corrupted distances")
	}

	bres := BFS(g, 0)
	if err := VerifyBFS(g, 0, bres.Level, bres.Parent); err != nil {
		t.Fatalf("VerifyBFS rejected a correct result: %v", err)
	}
	if err := VerifyBFS(g, 0, bres.Level, nil); err != nil {
		t.Fatalf("VerifyBFS without parents: %v", err)
	}

	labels := ConnectedComponents(g)
	if err := VerifyComponents(g, labels); err != nil {
		t.Fatalf("VerifyComponents rejected a correct result: %v", err)
	}

	inst := NewSetCoverInstance(12, 60, 3, 11)
	cover := ApproxSetCover(inst.Graph, inst.Sets, SetCoverOptions{})
	if err := VerifySetCover(inst.Graph, inst.Sets, cover.InCover, 0.01); err != nil {
		t.Fatalf("VerifySetCover rejected a correct result: %v", err)
	}
	none := make([]bool, inst.Sets)
	if err := VerifySetCover(inst.Graph, inst.Sets, none, 0.01); err == nil {
		t.Fatal("VerifySetCover accepted an empty cover")
	}

	// BucketDebugEnabled mirrors the build tag; in either state the
	// constant must be usable from the public API.
	_ = BucketDebugEnabled
}
