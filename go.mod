module julienne

go 1.22
