// Socialnet: community-structure analysis of a synthetic social
// network with the k-core decomposition — the workload the paper's
// introduction motivates (coreness as a vertex-importance measure in
// social graphs and fraud detection).
//
// The example builds a power-law graph, computes coreness with the
// work-efficient algorithm, cross-checks it against the sequential
// Batagelj–Zaversnik oracle, and reports the "core spectrum": how many
// vertices survive at each k, and the densest community (the maximum
// core) with its internal edge density.
//
//	go run ./examples/socialnet
package main

import (
	"fmt"
	"log"
	"time"

	"julienne"
)

func main() {
	const n, m = 1 << 15, 1 << 18
	g := julienne.ChungLu(n, m, 2.2, true, 7)
	fmt.Printf("social network: n=%d m=%d maxdeg=%d\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	//lint:ignore julvet/norandtime examples show only the public API; internal/harness is not importable outside the module
	start := time.Now()
	res := julienne.KCoreFull(g, julienne.BucketOptions{})
	fmt.Printf("work-efficient k-core: %v (%d peeling rounds)\n",
		time.Since(start), res.Rounds)

	// Verify against the sequential oracle — the decomposition is
	// unique, so they must agree exactly.
	oracle := julienne.KCoreBZ(g)
	for v, c := range res.Coreness {
		if oracle[v] != c {
			log.Fatalf("coreness mismatch at vertex %d", v)
		}
	}
	fmt.Println("verified against sequential Batagelj-Zaversnik: exact match")

	// Core spectrum: survivors at each k (cumulative from above).
	kmax := uint32(0)
	for _, c := range res.Coreness {
		if c > kmax {
			kmax = c
		}
	}
	surv := make([]int, kmax+1)
	for _, c := range res.Coreness {
		surv[c]++
	}
	cum := 0
	fmt.Println("core spectrum (k: vertices with coreness >= k):")
	for k := int(kmax); k >= 0; k-- {
		cum += surv[k]
		if k == int(kmax) || k == int(kmax)/2 || k == 2 || k == 0 {
			fmt.Printf("  k=%-4d %d vertices\n", k, cum)
		}
	}

	// The maximum core: the densest community. Count its internal
	// edges to report density.
	inMax := make([]bool, g.NumVertices())
	size := 0
	for v, c := range res.Coreness {
		if c == kmax {
			inMax[v] = true
			size++
		}
	}
	var internal int64
	for v := 0; v < g.NumVertices(); v++ {
		if !inMax[v] {
			continue
		}
		g.OutNeighbors(julienne.Vertex(v), func(u julienne.Vertex, w julienne.Weight) bool {
			if inMax[u] {
				internal++
			}
			return true
		})
	}
	internal /= 2 // undirected edges counted twice
	possible := int64(size) * int64(size-1) / 2
	density := 0.0
	if possible > 0 {
		density = float64(internal) / float64(possible)
	}
	fmt.Printf("max core (k=%d): %d vertices, %d internal edges, density %.3f\n",
		kmax, size, internal, density)
}
