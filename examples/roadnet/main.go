// Roadnet: single-source shortest paths on a high-diameter road-like
// network, the regime where ∆-stepping's bucket structure earns its
// keep (§4.2). The example sweeps ∆ to show the work/parallelism
// trade-off the Meyer–Sanders algorithm exposes — small ∆ approaches
// Dijkstra (many cheap rounds), huge ∆ approaches Bellman-Ford (few
// expensive rounds) — and validates every run against sequential
// Dijkstra.
//
//	go run ./examples/roadnet
package main

import (
	"fmt"
	"log"
	"time"

	"julienne"
)

func main() {
	// A 256x256 mesh with heavy weights plays the road-network role:
	// bounded degree, ~500-hop diameter.
	g := julienne.HeavyWeights(julienne.Grid2D(256, 256), 11)
	fmt.Printf("road network: n=%d m=%d diameter(hops)=%d\n",
		g.NumVertices(), g.NumEdges(), julienne.Eccentricity(g, 0))

	ref := julienne.Dijkstra(g, 0)
	fmt.Printf("sequential Dijkstra: %d reachable\n", count(ref.Dist))

	fmt.Println("\ndelta sweep (bucketed delta-stepping, Algorithm 2):")
	fmt.Printf("%-12s %-10s %-8s %s\n", "delta", "time", "rounds", "relaxations")
	for _, delta := range []int64{1 << 10, 1 << 13, 1 << 15, 1 << 17, 1 << 30} {
		//lint:ignore julvet/norandtime examples show only the public API; internal/harness is not importable outside the module
		start := time.Now()
		res := julienne.DeltaSteppingFull(g, 0, delta, julienne.BucketOptions{})
		elapsed := time.Since(start)
		check(ref.Dist, res.Dist)
		fmt.Printf("%-12d %-10v %-8d %d\n", delta, elapsed.Round(time.Microsecond),
			res.Rounds, res.Relaxations)
	}

	// The baselines at the paper's tuned delta.
	const delta = 32768
	for name, run := range map[string]func() julienne.SSSPResult{
		"gap-bins (thread-local bins)": func() julienne.SSSPResult {
			return julienne.DeltaSteppingBins(g, 0, delta)
		},
		"light/heavy split": func() julienne.SSSPResult {
			return julienne.DeltaSteppingLH(g, 0, delta)
		},
		"bellman-ford": func() julienne.SSSPResult {
			return julienne.BellmanFord(g, 0)
		},
	} {
		//lint:ignore julvet/norandtime examples show only the public API; internal/harness is not importable outside the module
		start := time.Now()
		res := run()
		check(ref.Dist, res.Dist)
		fmt.Printf("\n%-28s time=%v rounds=%d", name,
			time.Since(start).Round(time.Microsecond), res.Rounds)
	}
	fmt.Println("\n\nall implementations agree with Dijkstra")
}

func count(dist []int64) int {
	n := 0
	for _, d := range dist {
		if d != julienne.UnreachableDist {
			n++
		}
	}
	return n
}

func check(want, got []int64) {
	for v := range want {
		if want[v] != got[v] {
			log.Fatalf("distance mismatch at vertex %d: %d vs %d", v, got[v], want[v])
		}
	}
}
