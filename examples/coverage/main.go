// Coverage: sensor-placement planning as approximate set cover. Each
// candidate sensor location (a set) covers the map cells (elements)
// within its range; the goal is to cover every cell with as few
// sensors as possible. This is the bipartite set-cover workload of
// §4.3, built from a geometric instance instead of a random one.
//
// The example compares the bucketed (1+ε)H_n algorithm against the
// carry-over PBBS-style implementation and exact sequential greedy,
// and shows the ε trade-off (coarser buckets → faster, slightly
// larger covers).
//
//	go run ./examples/coverage
package main

import (
	"fmt"
	"log"
	"time"

	"julienne"
)

const (
	gridSide    = 96  // the map is gridSide x gridSide cells
	sensorCount = 900 // candidate sensor locations
	sensorRange = 5   // Chebyshev radius a sensor covers
)

func main() {
	g, numSets := buildInstance()
	fmt.Printf("sensor placement: %d candidate sensors, %d cells, %d coverage pairs\n",
		numSets, g.NumVertices()-numSets, g.NumEdges())

	type outcome struct {
		name  string
		size  int
		time  time.Duration
		valid bool
	}
	var results []outcome
	run := func(name string, f func() julienne.SetCoverResult) {
		//lint:ignore julvet/norandtime examples show only the public API; internal/harness is not importable outside the module
		start := time.Now()
		res := f()
		elapsed := time.Since(start)
		err := julienne.ValidateCover(g, numSets, res.InCover)
		results = append(results, outcome{name, res.CoverSize, elapsed, err == nil})
		if err != nil {
			log.Fatalf("%s produced an invalid cover: %v", name, err)
		}
	}
	run("julienne (e=0.01)", func() julienne.SetCoverResult {
		return julienne.ApproxSetCover(g, numSets, julienne.SetCoverOptions{Epsilon: 0.01})
	})
	run("julienne (e=0.5)", func() julienne.SetCoverResult {
		return julienne.ApproxSetCover(g, numSets, julienne.SetCoverOptions{Epsilon: 0.5})
	})
	run("pbbs carry-over", func() julienne.SetCoverResult {
		return julienne.SetCoverPBBS(g, numSets, julienne.SetCoverOptions{})
	})
	run("exact greedy (seq)", func() julienne.SetCoverResult {
		return julienne.SetCoverGreedy(g, numSets)
	})

	fmt.Printf("\n%-20s %-10s %-8s %s\n", "algorithm", "sensors", "valid", "time")
	for _, r := range results {
		fmt.Printf("%-20s %-10d %-8v %v\n", r.name, r.size, r.valid,
			r.time.Round(time.Microsecond))
	}
}

// buildInstance lays sensors on a jittered grid and connects each to
// the cells in its range. Sets are vertices [0, sensorCount); cells
// follow.
func buildInstance() (*julienne.CSR, int) {
	cells := gridSide * gridSide
	n := sensorCount + cells
	cellID := func(r, c int) julienne.Vertex {
		return julienne.Vertex(sensorCount + r*gridSide + c)
	}
	var edges []julienne.Edge
	// Place sensors deterministically: stride the grid, with a simple
	// hash jitter so ranges overlap irregularly.
	for s := 0; s < sensorCount; s++ {
		base := s * cells / sensorCount
		r := base / gridSide
		c := base % gridSide
		r = (r + s%3) % gridSide
		c = (c + (s*7)%5) % gridSide
		for dr := -sensorRange; dr <= sensorRange; dr++ {
			for dc := -sensorRange; dc <= sensorRange; dc++ {
				rr, cc := r+dr, c+dc
				if rr < 0 || rr >= gridSide || cc < 0 || cc >= gridSide {
					continue
				}
				edges = append(edges, julienne.Edge{U: julienne.Vertex(s), V: cellID(rr, cc)})
			}
		}
	}
	return julienne.FromEdges(n, edges, julienne.DefaultBuild), sensorCount
}
