// Quickstart: generate a social-style graph and run all four
// bucketing-based applications of the Julienne framework through the
// public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"julienne"
)

func main() {
	// An undirected RMAT graph: skewed degrees, small diameter — the
	// shape of the paper's social-network inputs.
	g := julienne.RMAT(1<<14, 1<<17, true, 42)
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// k-core decomposition (work-efficient bucketed peeling).
	cores := julienne.KCore(g)
	kmax := uint32(0)
	for _, c := range cores {
		if c > kmax {
			kmax = c
		}
	}
	fmt.Printf("k-core: kmax=%d rho=%d\n", kmax, julienne.Rho(g))

	// Weighted BFS with the paper's [1, log n) weighting.
	wg := julienne.LogWeights(g, 1)
	dist := julienne.WBFS(wg, 0)
	reached := 0
	for _, d := range dist {
		if d != julienne.UnreachableDist {
			reached++
		}
	}
	fmt.Printf("wBFS: reached %d/%d vertices from vertex 0\n", reached, len(dist))

	// ∆-stepping with heavy weights and the paper's tuned ∆.
	hg := julienne.HeavyWeights(g, 2)
	res := julienne.DeltaSteppingFull(hg, 0, 32768, julienne.BucketOptions{})
	fmt.Printf("delta-stepping: %d rounds, %d relaxations\n", res.Rounds, res.Relaxations)

	// Approximate set cover on a random bipartite instance.
	inst := julienne.NewSetCoverInstance(1<<11, 1<<14, 4, 3)
	cover := julienne.ApproxSetCover(inst.Graph, inst.Sets, julienne.SetCoverOptions{})
	if err := julienne.ValidateCover(inst.Graph, inst.Sets, cover.InCover); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("set cover: chose %d of %d sets (valid)\n", cover.CoverSize, inst.Sets)
}
