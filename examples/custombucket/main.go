// Custombucket: how to write your own bucketing-based algorithm on the
// public bucket interface. The example implements weighted BFS from
// scratch in ~50 lines — the same Algorithm 2 loop the library ships —
// and validates it against the built-in Dijkstra. Use this as the
// template for new bucketed algorithms (priority schedulers, other
// peeling processes, ...).
//
//	go run ./examples/custombucket
package main

import (
	"fmt"
	"log"
	"time"

	"julienne"
)

const inf = int64(1) << 60

// customWBFS is Algorithm 2 with ∆ = 1 written by hand on the public
// interface: distances array + bucket structure + relax loop.
// (Single-threaded for clarity: the library's sssp package shows the
// atomic version; the bucket structure itself is the same.)
func customWBFS(g julienne.Graph, src julienne.Vertex) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0

	// D maps a vertex to its current bucket: its tentative distance
	// (∆ = 1), or NilBucket while unreached.
	d := func(v uint32) julienne.BucketID {
		if dist[v] >= inf {
			return julienne.NilBucket
		}
		return julienne.BucketID(dist[v])
	}
	b := julienne.NewBuckets(n, d, julienne.IncreasingBuckets, julienne.BucketOptions{})

	var ids []uint32
	var dests []julienne.BucketDest
	for {
		cur, frontier := b.NextBucket()
		if cur == julienne.NilBucket {
			break
		}
		ids, dests = ids[:0], dests[:0]
		for _, v := range frontier {
			dv := dist[v]
			g.OutNeighbors(julienne.Vertex(v), func(u julienne.Vertex, w julienne.Weight) bool {
				if nd := dv + int64(w); nd < dist[u] {
					prev := d(uint32(u))
					dist[u] = nd
					if dest := b.GetBucket(prev, julienne.BucketID(nd)); dest != julienne.NoBucketDest {
						ids = append(ids, uint32(u))
						dests = append(dests, dest)
					}
				}
				return true
			})
		}
		b.UpdateBuckets(len(ids), func(j int) (uint32, julienne.BucketDest) {
			return ids[j], dests[j]
		})
	}
	for i := range dist {
		if dist[i] >= inf {
			dist[i] = julienne.UnreachableDist
		}
	}
	return dist
}

func main() {
	g := julienne.LogWeights(julienne.RMAT(1<<14, 1<<17, true, 99), 1)
	fmt.Printf("graph: n=%d m=%d (weights [1, log n))\n", g.NumVertices(), g.NumEdges())

	//lint:ignore julvet/norandtime examples show only the public API; internal/harness is not importable outside the module
	start := time.Now()
	mine := customWBFS(g, 0)
	fmt.Printf("hand-written bucketed wBFS: %v\n", time.Since(start).Round(time.Microsecond))

	ref := julienne.Dijkstra(g, 0)
	for v := range mine {
		if mine[v] != ref.Dist[v] {
			log.Fatalf("mismatch at %d: %d vs %d", v, mine[v], ref.Dist[v])
		}
	}
	lib := julienne.WBFS(g, 0)
	for v := range mine {
		if mine[v] != lib[v] {
			log.Fatalf("library mismatch at %d", v)
		}
	}
	fmt.Println("distances match Dijkstra and the library wBFS exactly")

	// Peek at the structure's work (the Figure 1 quantities).
	fmt.Println("\nbucket interface recap:")
	fmt.Println("  NewBuckets(n, D, order, opts)  -> structure over identifiers [0,n)")
	fmt.Println("  NextBucket()                   -> (bucket id, live identifiers)")
	fmt.Println("  GetBucket(prev, next)          -> opaque destination (or NoBucketDest)")
	fmt.Println("  UpdateBuckets(k, f)            -> batched moves")
}
