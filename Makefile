# Developer targets for the julienne repository. `make check` is the
# CI gate: build + full tests, static checks, and race-testing the
# concurrency-sensitive packages (bucket counters, obs recorder).

GO ?= go

.PHONY: all build test vet fmt race bench check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt -l prints nonconforming files; fail if any.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./internal/bucket/... ./internal/obs/...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

check: build test vet fmt race
	@echo "check: ok"
