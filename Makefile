# Developer targets for the julienne repository. `make check` is the
# CI gate: build + full tests, static checks, race-testing the
# concurrency-sensitive packages (bucket structure, algorithms, Ligra
# layer, obs recorder) including a short property-test pass, and the
# julienne_debug build with invariant assertions compiled in.

GO ?= go

.PHONY: all build test vet fmt lint race debug chaos fuzz bench bench-smoke bench-go obs-demo serve-smoke check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt -l prints nonconforming files; fail if any.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint runs the stock toolchain passes (go vet: copylocks, atomic,
# nilfunc, ...) plus julvet, the in-repo multichecker that enforces the
# framework's concurrency, arena, and serving contracts (DESIGN.md
# §8/§13): atomicmix, atomicalign, arenaalias, scratchpair, tagdrift,
# norandtime, panicguard, ctxguard, semabalance, obsnames, statusmap.
# Obligations (Release, cancel, semaphore release, recover guards) are
# tracked interprocedurally: per-function facts are computed over the
# whole unit, serialized, and consulted when an obligation crosses a
# helper call — same package or across packages. The tagged
# invocations re-analyze the tree with the other half of each
# race/julienne_debug file pair (and the chaos-injection hooks)
# active, each as its own unit with its own fact store.
lint: vet
	$(GO) run ./cmd/julvet ./...
	$(GO) run ./cmd/julvet -tags race ./...
	$(GO) run ./cmd/julvet -tags julienne_debug ./...
	$(GO) run ./cmd/julvet -tags julienne_chaos ./...

race:
	$(GO) test -race -short ./internal/bucket/... ./internal/obs/... \
		./internal/algo/... ./internal/ligra/... ./internal/proptest/... \
		./internal/semisort/... ./internal/bench/...

# debug builds with the julienne_debug tag, which compiles invariant
# assertions into the bucket structure and Ligra layer, then runs the
# assertion-sensitive suites under it.
debug:
	$(GO) build -tags julienne_debug ./...
	$(GO) test -tags julienne_debug -short ./internal/bucket/... ./internal/proptest/...

# chaos builds with the julienne_chaos tag, which compiles the
# schedule-driven fault-injection points into the parallel substrate
# and bucket structure, then runs the chaos suite under -race: injected
# worker panics must surface as a single wrapped PanicError on the
# caller, forced cancellations must leave the run re-runnable, and
# every schedule must leave goroutine counts and the scratch pool
# balanced (DESIGN.md §9). Nightly CI raises JULIENNE_CHAOS_SEEDS.
chaos:
	$(GO) build -tags julienne_chaos ./...
	$(GO) test -tags julienne_chaos -race -short ./internal/chaos/

# fuzz smoke: a bounded run of every fuzz target (CI nightly runs this;
# `go test -fuzz` accepts one target per package invocation).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz=FuzzVarint -fuzztime $(FUZZTIME) ./internal/compress/
	$(GO) test -fuzz=FuzzDecode -fuzztime $(FUZZTIME) ./internal/compress/
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/compress/
	$(GO) test -fuzz=FuzzReadText -fuzztime $(FUZZTIME) ./internal/graphio/
	$(GO) test -fuzz=FuzzReadEdgeList -fuzztime $(FUZZTIME) ./internal/graphio/
	$(GO) test -fuzz=FuzzReadBinary -fuzztime $(FUZZTIME) ./internal/graphio/

# bench regenerates the committed performance baseline
# (BENCH_bucket.json / BENCH_algos.json in the repo root), including
# the before/after comparison against the pinned pre-arena numbers.
# bench-smoke is the CI-sized variant: small inputs, no comparison,
# output under bench-out/. See DESIGN.md §7 for the report schema.
BENCH_OUT ?= .
bench:
	$(GO) run ./cmd/bench -out $(BENCH_OUT)

# bench-smoke also gates the fusion ablation: the fused grid-family
# entries must extract fewer bucket rounds than their unfused
# counterparts (obs counter, not wall time), wbfs at least 3x fewer.
bench-smoke:
	$(GO) run ./cmd/bench -smoke -assert-fusion -out bench-out

# obs-demo smoke-tests the observability plane end to end: run kcore
# with -http on an ephemeral port, scrape /metrics until the
# round-latency histogram is populated, and check /debug/obs. Needs
# curl. DESIGN.md §10 documents the exposed surface.
obs-demo:
	sh scripts/obs-demo.sh

# serve-smoke smoke-tests the analytics service end to end: boot
# cmd/served (built -race) on an ephemeral port, drive it with
# cmd/servedload (queries + async jobs), scrape /metrics for the serve
# counters, SIGTERM, and assert a clean drain. Needs curl. DESIGN.md
# §12 documents the serving architecture.
serve-smoke:
	sh scripts/serve-smoke.sh

# bench-go runs the raw go-test benchmarks once each (quick signal
# while iterating; use `make bench` for the reproducible reports).
bench-go:
	$(GO) test -run xxx -bench . -benchtime 1x .

check: build test lint fmt race debug chaos serve-smoke
	@echo "check: ok"
