// Benchmarks regenerating every table and figure of the paper's
// evaluation, one family per artifact:
//
//	BenchmarkTable3*   — the per-application/implementation timings
//	BenchmarkFig1*     — the §3.4 bucket microbenchmark series
//	BenchmarkFig2*     — k-core scaling inputs
//	BenchmarkFig3*     — wBFS (weights [1,log n))
//	BenchmarkFig4*     — ∆-stepping (weights [1,1e5))
//	BenchmarkFig5*     — set cover
//	BenchmarkAblation* — the §3.3/§4.2 design-choice ablations
//	BenchmarkTable1* / BenchmarkTable2* — the counter/stat pipelines
//
// Run `go test -bench=. -benchmem` or, for the formatted paper-style
// output (thread sweeps, speedup columns), `go run ./cmd/experiments`.
package julienne

import (
	"testing"

	"julienne/internal/algo/densest"
	"julienne/internal/algo/kcore"
	"julienne/internal/algo/setcover"
	"julienne/internal/algo/sssp"
	"julienne/internal/algo/triangles"
	"julienne/internal/algo/truss"
	"julienne/internal/bucket"
	"julienne/internal/compress"
	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/microbench"
	"julienne/internal/obs"
)

// benchGraph is the social-style input shared by the Table 3 and
// Figure 2–4 benches (the role of Twitter-Sym at laptop scale).
func benchGraph() *graph.CSR { return gen.RMAT(1<<13, 1<<17, true, 2017) }

// benchRoad is the high-diameter input (Figure 4's regime).
func benchRoad() *graph.CSR { return gen.Grid2D(128, 128) }

// --- Table 2: input statistics --------------------------------------------

func BenchmarkTable2GraphStats(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = kcore.Rho(g)
	}
}

// --- Table 1: work-efficiency counter pipelines ----------------------------

func BenchmarkTable1KCoreWorkCounters(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := kcore.Coreness(g, kcore.Options{})
		if res.VerticesScanned != int64(g.NumVertices()) {
			b.Fatal("work-efficiency invariant broken")
		}
	}
}

// --- Table 3: k-core -------------------------------------------------------

func BenchmarkTable3KCoreJulienne(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kcore.Coreness(g, kcore.Options{})
	}
}

// BenchmarkKCoreRecorderOff/On measure telemetry overhead: Off is the
// uninstrumented path (nil Recorder — must match BenchmarkTable3KCoreJulienne),
// On pays counters, round metrics and one span per peeling round.
func BenchmarkKCoreRecorderOff(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kcore.Coreness(g, kcore.Options{Recorder: nil})
	}
}

func BenchmarkKCoreRecorderOn(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kcore.Coreness(g, kcore.Options{Recorder: obs.NewRecorder()})
	}
}

func BenchmarkTable3KCoreLigra(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kcore.CorenessLigra(g)
	}
}

func BenchmarkTable3KCoreBZSequential(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kcore.CorenessBZ(g)
	}
}

// --- Table 3: wBFS (weights [1, log n)) ------------------------------------

func BenchmarkTable3WBFSJulienne(b *testing.B) {
	g := gen.LogWeights(benchGraph(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.WBFS(g, 0, sssp.Options{})
	}
}

func BenchmarkTable3WBFSBellmanFord(b *testing.B) {
	g := gen.LogWeights(benchGraph(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.BellmanFord(g, 0)
	}
}

func BenchmarkTable3WBFSGapBins(b *testing.B) {
	g := gen.LogWeights(benchGraph(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.DeltaSteppingBins(g, 0, 1)
	}
}

func BenchmarkTable3WBFSDijkstraSequential(b *testing.B) {
	g := gen.LogWeights(benchGraph(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.DijkstraHeap(g, 0)
	}
}

func BenchmarkTable3WBFSDialSequential(b *testing.B) {
	g := gen.LogWeights(benchGraph(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.Dial(g, 0)
	}
}

// --- Table 3: ∆-stepping (weights [1, 1e5)) --------------------------------

const benchDelta = 32768

func BenchmarkTable3DeltaJulienne(b *testing.B) {
	g := gen.HeavyWeights(benchGraph(), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.DeltaStepping(g, 0, benchDelta, sssp.Options{})
	}
}

func BenchmarkTable3DeltaBellmanFord(b *testing.B) {
	g := gen.HeavyWeights(benchGraph(), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.BellmanFord(g, 0)
	}
}

func BenchmarkTable3DeltaGapBins(b *testing.B) {
	g := gen.HeavyWeights(benchGraph(), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.DeltaSteppingBins(g, 0, benchDelta)
	}
}

func BenchmarkTable3DeltaDijkstraSequential(b *testing.B) {
	g := gen.HeavyWeights(benchGraph(), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.DijkstraHeap(g, 0)
	}
}

// --- Table 3: set cover -----------------------------------------------------

func BenchmarkTable3SetCoverJulienne(b *testing.B) {
	inst := gen.SetCover(1<<12, 1<<15, 4, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		setcover.Approx(inst.Graph, inst.Sets, setcover.Options{})
	}
}

func BenchmarkTable3SetCoverPBBS(b *testing.B) {
	inst := gen.SetCover(1<<12, 1<<15, 4, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		setcover.ApproxPBBS(inst.Graph, inst.Sets, setcover.Options{})
	}
}

func BenchmarkTable3SetCoverGreedySequential(b *testing.B) {
	inst := gen.SetCover(1<<12, 1<<15, 4, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		setcover.Greedy(inst.Graph, inst.Sets)
	}
}

// --- Figure 1: bucket-structure microbenchmark ------------------------------

func benchFig1(b *testing.B, buckets int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := microbench.Run(microbench.Config{
			Identifiers: 1 << 17, Buckets: buckets, Seed: 7,
		})
		b.ReportMetric(p.Throughput, "ids/s")
		b.ReportMetric(p.AvgPerRound, "ids/round")
	}
}

func BenchmarkFig1Buckets128(b *testing.B)  { benchFig1(b, 128) }
func BenchmarkFig1Buckets256(b *testing.B)  { benchFig1(b, 256) }
func BenchmarkFig1Buckets512(b *testing.B)  { benchFig1(b, 512) }
func BenchmarkFig1Buckets1024(b *testing.B) { benchFig1(b, 1024) }

// --- Figures 2–5: scaling inputs (thread sweeps live in cmd/experiments;
// these measure the same workloads at the current GOMAXPROCS) -------------

func BenchmarkFig2KCorePowerlaw(b *testing.B) {
	g := gen.ChungLu(1<<13, 1<<17, 2.3, true, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kcore.Coreness(g, kcore.Options{})
	}
}

func BenchmarkFig3WBFSRoad(b *testing.B) {
	g := gen.LogWeights(benchRoad(), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.WBFS(g, 0, sssp.Options{})
	}
}

func BenchmarkFig4DeltaRoad(b *testing.B) {
	g := gen.HeavyWeights(benchRoad(), 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.DeltaStepping(g, 0, benchDelta, sssp.Options{})
	}
}

func BenchmarkFig5SetCover(b *testing.B) {
	inst := gen.SetCover(1<<11, 1<<14, 4, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		setcover.Approx(inst.Graph, inst.Sets, setcover.Options{})
	}
}

// --- Ablations (§3.3 and §4.2 design choices) -------------------------------

func BenchmarkAblationUpdateStrategyHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		microbench.Run(microbench.Config{Identifiers: 1 << 17, Buckets: 128, Seed: 9})
	}
}

func BenchmarkAblationUpdateStrategySemisort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		microbench.Run(microbench.Config{Identifiers: 1 << 17, Buckets: 128, Seed: 9,
			Options: bucket.Options{Semisort: true}})
	}
}

func benchAblationRange(b *testing.B, nB int) {
	g := benchGraph()
	opt := kcore.Options{Buckets: bucket.Options{OpenBuckets: nB}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kcore.Coreness(g, opt)
	}
}

func BenchmarkAblationRangeSize16(b *testing.B)   { benchAblationRange(b, 16) }
func BenchmarkAblationRangeSize128(b *testing.B)  { benchAblationRange(b, 128) }
func BenchmarkAblationRangeSize1024(b *testing.B) { benchAblationRange(b, 1024) }
func BenchmarkAblationRangeSizeExact(b *testing.B) {
	benchAblationRange(b, 1<<20) // effectively no overflow bucket
}

func BenchmarkAblationLightHeavyOff(b *testing.B) {
	g := gen.HeavyWeights(benchRoad(), 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.DeltaStepping(g, 0, benchDelta, sssp.Options{})
	}
}

func BenchmarkAblationLightHeavyOn(b *testing.B) {
	g := gen.HeavyWeights(benchRoad(), 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.DeltaSteppingLH(g, 0, benchDelta, sssp.Options{})
	}
}

func BenchmarkAblationCompressionCSR(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kcore.Coreness(g, kcore.Options{})
	}
}

func BenchmarkAblationCompressionCompressed(b *testing.B) {
	c := compress.FromCSR(benchGraph())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kcore.Coreness(c, kcore.Options{})
	}
}

// --- Extensions: edge-identifier bucketing --------------------------------

func BenchmarkExtensionKTruss(b *testing.B) {
	g := gen.RMAT(1<<11, 1<<15, true, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		truss.Trussness(g)
	}
}

func BenchmarkExtensionTriangleCount(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		triangles.Count(g)
	}
}

func BenchmarkExtensionDensestCharikar(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		densest.Charikar(g)
	}
}
