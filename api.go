package julienne

import (
	"io"

	"julienne/internal/algo/bfs"
	"julienne/internal/algo/cc"
	"julienne/internal/algo/densest"
	"julienne/internal/algo/kcore"
	"julienne/internal/algo/setcover"
	"julienne/internal/algo/sssp"
	"julienne/internal/algo/triangles"
	"julienne/internal/algo/truss"
	"julienne/internal/bucket"
	"julienne/internal/compress"
	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/graphio"
	"julienne/internal/ligra"
	"julienne/internal/obs"
	"julienne/internal/oracle"
	"julienne/internal/parallel"
)

// --- graph types ------------------------------------------------------------

// Vertex identifies a vertex: a dense integer in [0, NumVertices).
type Vertex = graph.Vertex

// Weight is a non-negative integral edge weight.
type Weight = graph.Weight

// Edge is one directed edge of an edge list.
type Edge = graph.Edge

// Graph is the read interface all algorithms accept; *CSR and
// *Compressed implement it.
type Graph = graph.Graph

// CSR is the mutable compressed-sparse-row graph.
type CSR = graph.CSR

// Compressed is the Ligra+-style byte-compressed immutable graph.
type Compressed = compress.Graph

// BuildOptions controls FromEdges.
type BuildOptions = graph.BuildOptions

// NilVertex is the "no vertex" sentinel.
const NilVertex = graph.NilVertex

// FromEdges builds a CSR graph over n vertices from an edge list.
func FromEdges(n int, edges []Edge, opt BuildOptions) *CSR {
	return graph.FromEdges(n, edges, opt)
}

// DefaultBuild matches the paper's graph assumptions: simple graphs,
// no self-loops, no duplicate edges.
var DefaultBuild = graph.DefaultBuild

// Symmetrized returns the undirected version of g.
func Symmetrized(g *CSR) *CSR { return graph.Symmetrized(g) }

// ValidateGraph checks CSR structural invariants.
func ValidateGraph(g *CSR) error { return graph.Validate(g) }

// Compress converts a CSR graph to the byte-compressed representation.
func Compress(g *CSR) *Compressed { return compress.FromCSR(g) }

// --- generators and I/O -------------------------------------------------------

// RMAT samples an RMAT (Graph500-parameter) graph with n vertices and
// ~m edges; symmetric selects undirected output.
func RMAT(n, m int, symmetric bool, seed uint64) *CSR {
	return gen.RMAT(n, m, symmetric, seed)
}

// ErdosRenyi samples a uniform random graph.
func ErdosRenyi(n, m int, symmetric bool, seed uint64) *CSR {
	return gen.ErdosRenyi(n, m, symmetric, seed)
}

// ChungLu samples a power-law graph with exponent beta.
func ChungLu(n, m int, beta float64, symmetric bool, seed uint64) *CSR {
	return gen.ChungLu(n, m, beta, symmetric, seed)
}

// Grid2D returns the rows×cols mesh (a road-network stand-in).
func Grid2D(rows, cols int) *CSR { return gen.Grid2D(rows, cols) }

// RandomRegular returns a graph where every vertex draws d random
// out-neighbors.
func RandomRegular(n, d int, symmetric bool, seed uint64) *CSR {
	return gen.RandomRegular(n, d, symmetric, seed)
}

// UniformWeights copies g with integer weights uniform in [lo, hi).
func UniformWeights(g *CSR, lo, hi Weight, seed uint64) *CSR {
	return gen.UniformWeights(g, lo, hi, seed)
}

// LogWeights copies g with weights uniform in [1, log2 n) — the
// paper's wBFS weighting.
func LogWeights(g *CSR, seed uint64) *CSR { return gen.LogWeights(g, seed) }

// HeavyWeights copies g with weights uniform in [1, 10^5) — the
// paper's ∆-stepping weighting.
func HeavyWeights(g *CSR, seed uint64) *CSR { return gen.HeavyWeights(g, seed) }

// SetCoverInstance is a random bipartite set-cover input.
type SetCoverInstance = gen.SetCoverInstance

// NewSetCoverInstance generates a random instance in which every
// element is coverable.
func NewSetCoverInstance(sets, elements, avgCover int, seed uint64) SetCoverInstance {
	return gen.SetCover(sets, elements, avgCover, seed)
}

// SaveGraph writes g to path (.adj/.txt = Ligra text, else binary).
func SaveGraph(path string, g *CSR) error { return graphio.SaveFile(path, g) }

// LoadGraph reads a graph saved by SaveGraph; symmetric applies to
// text files, which do not record it.
func LoadGraph(path string, symmetric bool) (*CSR, error) {
	return graphio.LoadFile(path, symmetric)
}

// WriteGraphText / ReadGraphText expose the Ligra text format over
// arbitrary readers and writers.
func WriteGraphText(w io.Writer, g *CSR) error { return graphio.WriteText(w, g) }

// ReadGraphText parses a Ligra adjacency stream.
func ReadGraphText(r io.Reader, symmetric bool) (*CSR, error) {
	return graphio.ReadText(r, symmetric)
}

// --- bucketing (the paper's core contribution, §3) ---------------------------

// BucketID identifies a logical bucket.
type BucketID = bucket.ID

// NilBucket is the nullbkt sentinel ("not in any bucket").
const NilBucket = bucket.Nil

// BucketOrder selects increasing or decreasing traversal.
type BucketOrder = bucket.Order

// Bucket traversal orders.
const (
	IncreasingBuckets = bucket.Increasing
	DecreasingBuckets = bucket.Decreasing
)

// BucketDest is the opaque destination type of GetBucket/UpdateBuckets.
type BucketDest = bucket.Dest

// NoBucketDest means "no update required".
const NoBucketDest = bucket.None

// Buckets is the bucketing interface (§3.1): NextBucket, GetBucket,
// UpdateBuckets, Stats.
type Buckets = bucket.Structure

// BucketOptions configures the parallel bucket structure (open-range
// size nB, semisort update path).
type BucketOptions = bucket.Options

// NewBuckets creates the parallel work-efficient bucket structure over
// identifiers [0, n): d maps each identifier to its current bucket
// (NilBucket when absent) and must stay in sync with the caller's
// state; order selects the traversal direction.
func NewBuckets(n int, d func(uint32) BucketID, order BucketOrder, opt BucketOptions) Buckets {
	return bucket.New(n, d, order, opt)
}

// NewSequentialBuckets creates the §3.2 sequential reference
// implementation (the differential-testing oracle and single-thread
// baseline).
func NewSequentialBuckets(n int, d func(uint32) BucketID, order BucketOrder) Buckets {
	return bucket.NewSeq(n, d, order)
}

// BucketStats counts bucket-structure traffic.
type BucketStats = bucket.Stats

// --- Ligra layer (§2.1) -------------------------------------------------------

// VertexSubset is a subset of the vertices, stored sparse or dense.
type VertexSubset = ligra.VertexSubset

// EdgeMapOptions tunes EdgeMap (force push, suppress output).
type EdgeMapOptions = ligra.EdgeMapOptions

// EmptySubset returns the empty subset of a universe of size n.
func EmptySubset(n int) VertexSubset { return ligra.Empty(n) }

// SingleSubset returns the subset {v}.
func SingleSubset(n int, v Vertex) VertexSubset { return ligra.Single(n, v) }

// SparseSubset wraps a list of distinct vertex ids as a subset.
func SparseSubset(n int, ids []Vertex) VertexSubset { return ligra.FromSparse(n, ids) }

// DenseSubset wraps a membership array as a subset.
func DenseSubset(n int, member []bool) VertexSubset { return ligra.FromDense(n, member) }

// AllVertices returns the full universe [0, n).
func AllVertices(n int) VertexSubset { return ligra.All(n) }

// EdgeMap applies F over edges out of u (direction-optimized); see
// ligra.EdgeMap for the full contract.
func EdgeMap(g Graph, u VertexSubset, c func(Vertex) bool,
	f func(src, dst Vertex, w Weight) bool, opt EdgeMapOptions) VertexSubset {
	return ligra.EdgeMap(g, u, c, f, opt)
}

// --- observability ------------------------------------------------------------

// Recorder is the opt-in telemetry sink: named atomic counters and
// gauges, Chrome trace-event spans (chrome://tracing / Perfetto), and
// per-round metrics with observer hooks. A nil *Recorder is valid and
// fully inert, so telemetry costs a nil check when disabled.
type Recorder = obs.Recorder

// NewRecorder creates an empty Recorder whose trace clock starts now.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// RoundMetrics is one recorded algorithm round: frontier size, bucket
// extracted/moved/skipped deltas, edgeMap direction, and duration.
type RoundMetrics = obs.RoundMetrics

// RoundObserver receives every recorded round synchronously.
type RoundObserver = obs.RoundObserver

// TraceEvent is one Chrome trace-event entry, as written by
// Recorder.WriteTrace.
type TraceEvent = obs.TraceEvent

// --- failure semantics (DESIGN.md §9) ----------------------------------------

// ErrCanceled is the sentinel wrapped by every cancellation error;
// test with errors.Is(res.Err, julienne.ErrCanceled).
var ErrCanceled = obs.ErrCanceled

// Canceled reports a cooperatively-canceled run: which algorithm, how
// many rounds completed, and the underlying cause (context.Canceled,
// context.DeadlineExceeded, or a custom context cause).
type Canceled = obs.Canceled

// PanicError wraps a panic raised inside a parallel region (user
// callback or substrate). The substrate recovers worker panics, joins
// all workers, releases pooled scratch, and re-raises a single
// *PanicError on the calling goroutine; Value is the original panic
// value and Stack the stack of the panicking goroutine.
type PanicError = parallel.PanicError

// KCoreOptions configures KCoreWithOptions (bucket tuning plus an
// optional Recorder).
type KCoreOptions = kcore.Options

// SSSPOptions configures the bucketed SSSP entry points (bucket tuning
// plus an optional Recorder).
type SSSPOptions = sssp.Options

// KCoreWithOptions is KCore with full options: set Options.Recorder to
// capture per-round frontier sizes, bucket traffic, and trace spans.
func KCoreWithOptions(g Graph, opt KCoreOptions) KCoreResult {
	return kcore.Coreness(g, opt)
}

// DeltaSteppingWithOptions is DeltaStepping with full options,
// including an optional Recorder.
func DeltaSteppingWithOptions(g Graph, src Vertex, delta int64, opt SSSPOptions) SSSPResult {
	return sssp.DeltaStepping(g, src, delta, opt)
}

// WBFSWithOptions is WBFS with full options, including an optional
// Recorder.
func WBFSWithOptions(g Graph, src Vertex, opt SSSPOptions) SSSPResult {
	return sssp.WBFS(g, src, opt)
}

// --- applications -------------------------------------------------------------

// KCoreResult carries coreness values and measurements.
type KCoreResult = kcore.Result

// KCore computes coreness values with the paper's work-efficient
// bucketed peeling (Theorem 4.1: O(m+n) expected work, O(ρ log n)
// depth). The graph must be undirected.
func KCore(g Graph) []uint32 { return kcore.Coreness(g, kcore.Options{}).Coreness }

// KCoreFull is KCore returning the full result (rounds, bucket stats).
func KCoreFull(g Graph, opt BucketOptions) KCoreResult {
	return kcore.Coreness(g, kcore.Options{Buckets: opt})
}

// KCoreLigra is the work-inefficient frontier-based baseline.
func KCoreLigra(g Graph) KCoreResult { return kcore.CorenessLigra(g) }

// KCoreBZ is the sequential Batagelj–Zaversnik algorithm.
func KCoreBZ(g Graph) []uint32 { return kcore.CorenessBZ(g) }

// Rho returns the peeling complexity ρ of g (§4.1).
func Rho(g Graph) int64 { return kcore.Rho(g) }

// SSSPResult carries distances and measurements; Dist[v] is
// UnreachableDist for unreachable vertices.
type SSSPResult = sssp.Result

// UnreachableDist is the distance reported for unreachable vertices.
const UnreachableDist = sssp.Unreachable

// WBFS runs weighted BFS (∆-stepping with ∆=1; Theorem 4.2) from src.
func WBFS(g Graph, src Vertex) []int64 {
	return sssp.WBFS(g, src, sssp.Options{}).Dist
}

// DeltaStepping runs bucketed ∆-stepping (Algorithm 2) from src.
func DeltaStepping(g Graph, src Vertex, delta int64) []int64 {
	return sssp.DeltaStepping(g, src, delta, sssp.Options{}).Dist
}

// DeltaSteppingFull exposes the full result and bucket options.
func DeltaSteppingFull(g Graph, src Vertex, delta int64, opt BucketOptions) SSSPResult {
	return sssp.DeltaStepping(g, src, delta, sssp.Options{Buckets: opt})
}

// DeltaSteppingLH is ∆-stepping with the light/heavy edge split.
func DeltaSteppingLH(g Graph, src Vertex, delta int64) SSSPResult {
	return sssp.DeltaSteppingLH(g, src, delta, sssp.Options{})
}

// DeltaSteppingBins is the GAP-style thread-local-bin ∆-stepping.
func DeltaSteppingBins(g Graph, src Vertex, delta int64) SSSPResult {
	return sssp.DeltaSteppingBins(g, src, delta)
}

// BellmanFord is the frontier-based SSSP baseline.
func BellmanFord(g Graph, src Vertex) SSSPResult { return sssp.BellmanFord(g, src) }

// Dijkstra is the sequential binary-heap solver.
func Dijkstra(g Graph, src Vertex) SSSPResult { return sssp.DijkstraHeap(g, src) }

// Dial is sequential Dial's algorithm (bucket queue).
func Dial(g Graph, src Vertex) SSSPResult { return sssp.Dial(g, src) }

// SetCoverResult carries the chosen cover and measurements.
type SetCoverResult = setcover.Result

// SetCoverOptions configures the approximation (ε, bucket options).
type SetCoverOptions = setcover.Options

// ApproxSetCover runs the bucketed (1+ε)H_n-approximation (Algorithm
// 3) on the instance whose sets are vertices [0, numSets) of g.
func ApproxSetCover(g *CSR, numSets int, opt SetCoverOptions) SetCoverResult {
	return setcover.Approx(g, numSets, opt)
}

// SetCoverPBBS is the carry-over (work-inefficient) baseline.
func SetCoverPBBS(g *CSR, numSets int, opt SetCoverOptions) SetCoverResult {
	return setcover.ApproxPBBS(g, numSets, opt)
}

// SetCoverGreedy is the exact sequential greedy algorithm.
func SetCoverGreedy(g *CSR, numSets int) SetCoverResult {
	return setcover.Greedy(g, numSets)
}

// ValidateCover checks that the chosen sets cover every coverable
// element of the instance.
func ValidateCover(g Graph, numSets int, inCover []bool) error {
	return setcover.Validate(g, numSets, inCover)
}

// BFSResult carries BFS levels and parents.
type BFSResult = bfs.Result

// BFS runs a direction-optimized breadth-first search.
func BFS(g Graph, src Vertex) BFSResult { return bfs.BFS(g, src) }

// Eccentricity returns the largest BFS level from src.
func Eccentricity(g Graph, src Vertex) int32 { return bfs.Eccentricity(g, src) }

// WeightedSetCoverResult extends SetCoverResult with the cover's cost.
type WeightedSetCoverResult = setcover.WeightedResult

// ApproxWeightedSetCover is the weighted variant of ApproxSetCover:
// sets carry positive costs and are bucketed by uncovered elements per
// unit cost (§4.3's weighted case).
func ApproxWeightedSetCover(g *CSR, numSets int, costs []float64, opt SetCoverOptions) WeightedSetCoverResult {
	return setcover.ApproxWeighted(g, numSets, costs, opt)
}

// GreedyWeightedSetCover is the exact sequential weighted greedy.
func GreedyWeightedSetCover(g Graph, numSets int, costs []float64) WeightedSetCoverResult {
	return setcover.GreedyWeighted(g, numSets, costs)
}

// ApproxSetCoverOn runs the bucketed approximation over any packable
// graph (CSR or Compressed), consuming it; use g.Clone() to preserve
// the input.
func ApproxSetCoverOn(g Packer, numSets int, opt SetCoverOptions) SetCoverResult {
	return setcover.ApproxOn(g, numSets, opt)
}

// Packer is a graph supporting in-place out-edge packing.
type Packer = graph.Packer

// ConnectedComponents labels every vertex with the smallest vertex id
// in its component (label-propagation, the frontier-based algorithm of
// §1). The graph must be undirected.
func ConnectedComponents(g Graph) []Vertex { return cc.Components(g) }

// CountComponents counts distinct components given canonical labels.
func CountComponents(labels []Vertex) int { return cc.Count(labels) }

// CoreSubgraph is the induced subgraph of a particular k-core.
type CoreSubgraph = kcore.CoreSubgraph

// ExtractCore returns the k-core(s) of g given coreness values: the
// induced subgraph on vertices with coreness ≥ k, with its connected
// components identified (§4.1, footnote 1).
func ExtractCore(g Graph, coreness []uint32, k uint32) CoreSubgraph {
	return kcore.ExtractCore(g, coreness, k)
}

// VertexMap applies F to every member of u and returns the members for
// which F was true; F may side-effect and runs once per member (§2.1).
func VertexMap(u VertexSubset, f func(v Vertex) bool) VertexSubset {
	return ligra.VertexMap(u, f)
}

// VertexFilter returns the members of u satisfying the pure predicate p.
func VertexFilter(u VertexSubset, p func(v Vertex) bool) VertexSubset {
	return ligra.VertexFilter(u, p)
}

// DensestResult describes an approximately densest subgraph.
type DensestResult = densest.Result

// DensestOptions configures the densest-subgraph peels (cancellation
// context and deadline).
type DensestOptions = densest.Options

// DensestSubgraphWithOptions is DensestSubgraph with cancellation
// support.
func DensestSubgraphWithOptions(g Graph, opt DensestOptions) DensestResult {
	return densest.CharikarWithOptions(g, opt)
}

// DensestSubgraphBatchWithOptions is DensestSubgraphBatch with
// cancellation support.
func DensestSubgraphBatchWithOptions(g Graph, eps float64, opt DensestOptions) DensestResult {
	return densest.PeelBatchWithOptions(g, eps, opt)
}

// DensestSubgraph runs the exact greedy 2-approximation (Charikar's
// peel) work-efficiently on the bucket structure — the natural fifth
// bucketing-based application beyond the paper's four.
func DensestSubgraph(g Graph) DensestResult { return densest.Charikar(g) }

// DensestSubgraphBatch is the Bahmani et al. batch peel: a (2+2ε)-
// approximation in O(log n) fully parallel rounds.
func DensestSubgraphBatch(g Graph, eps float64) DensestResult {
	return densest.PeelBatch(g, eps)
}

// SubgraphDensity computes |E(S)|/|S| for a vertex set.
func SubgraphDensity(g Graph, vertices []Vertex) float64 {
	return densest.Density(g, vertices)
}

// CountTriangles returns the number of triangles in an undirected
// graph (degree-ordered intersection counting).
func CountTriangles(g Graph) int64 { return triangles.Count(g) }

// TrianglesPerVertex returns each vertex's triangle participation.
func TrianglesPerVertex(g Graph) []int64 { return triangles.PerVertex(g) }

// ClusteringCoefficient returns the global transitivity of g.
func ClusteringCoefficient(g Graph) float64 {
	return triangles.GlobalClusteringCoefficient(g)
}

// TrussResult is the edge-indexed k-truss decomposition.
type TrussResult = truss.Result

// KTruss computes the trussness of every edge with bucketed peeling
// over *edge* identifiers — §3.1's "identifiers represent other
// objects such as edges" made concrete.
func KTruss(g *CSR) TrussResult { return truss.Trussness(g) }

// --- verification (sequential oracles) ---------------------------------------

// The Verify* helpers check algorithm outputs against the deliberately
// simple sequential reference implementations in internal/oracle
// (linear-scan Matula–Beck, array Dijkstra, queue BFS, flood-fill
// components, rescan greedy set cover). They share no machinery with
// the parallel algorithms, run in O(n²)-ish time, and are meant for
// tests and small-graph sanity checks, not production-size inputs.

// VerifyKCore checks coreness values against the sequential peeling
// oracle. The graph must be undirected.
func VerifyKCore(g Graph, coreness []uint32) error {
	return oracle.VerifyCoreness(g, coreness)
}

// VerifySSSP checks shortest-path distances from src (UnreachableDist
// for unreachable vertices) against the array-Dijkstra oracle.
func VerifySSSP(g Graph, src Vertex, dist []int64) error {
	return oracle.VerifyDistances(g, src, dist)
}

// VerifyBFS checks BFS levels exactly and, when parent is non-nil, the
// parent array structurally (each parent one level closer over a real
// edge).
func VerifyBFS(g Graph, src Vertex, level []int32, parent []Vertex) error {
	return oracle.VerifyBFS(g, src, level, parent)
}

// VerifyComponents checks canonical min-label component labels. The
// graph must be undirected.
func VerifyComponents(g Graph, labels []Vertex) error {
	return oracle.VerifyComponents(g, labels)
}

// VerifySetCover checks that inCover is a valid cover and that its size
// is within the (1+eps)·H_d approximation bound of the greedy oracle in
// both directions.
func VerifySetCover(g Graph, numSets int, inCover []bool, eps float64) error {
	return oracle.VerifyCover(g, numSets, inCover, eps)
}

// BucketDebugEnabled reports whether this binary was built with the
// julienne_debug tag, which compiles invariant assertions into the
// bucket structure and the Ligra layer.
const BucketDebugEnabled = bucket.DebugEnabled

// WriteEdgeList / ReadEdgeList expose the SNAP-style edge-list format.
func WriteEdgeList(w io.Writer, g *CSR) error { return graphio.WriteEdgeList(w, g) }

// ReadEdgeList parses a SNAP-style edge list ("u v" or "u v w" lines,
// '#' comments).
func ReadEdgeList(r io.Reader, opt BuildOptions) (*CSR, error) {
	return graphio.ReadEdgeList(r, opt)
}
