package julienne

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentSharedGraphQueries pins the shared-read-path contract
// the serving layer (internal/serve) depends on: many goroutines may
// run point queries against ONE *CSR and ONE *Recorder concurrently —
// with metrics/flight scrapes interleaved — and every query must
// return exactly the single-threaded answer. Run under -race via
// `make race`; lazy CSR state (in-edge construction) and all Recorder
// paths are exercised across the concurrent callers.
func TestConcurrentSharedGraphQueries(t *testing.T) {
	g := UniformWeights(Grid2D(24, 24), 1, 8, 7)
	rec := NewRecorder()

	srcs := []Vertex{0, 17, 255, 575}
	wantDelta := make(map[Vertex][]int64, len(srcs))
	wantWBFS := make(map[Vertex][]int64, len(srcs))
	for _, s := range srcs {
		wantDelta[s] = DeltaStepping(g, s, 4)
		wantWBFS[s] = WBFS(g, s)
	}
	wantCore := KCore(g)

	sameInt64 := func(t *testing.T, what string, got, want []int64) {
		t.Helper()
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: diverged at vertex %d: got %d want %d", what, i, got[i], want[i])
				return
			}
		}
	}

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = rec.WriteMetrics(io.Discard)
				_ = rec.WriteDebugJSON(io.Discard)
				_ = rec.FlightTail(32)
			}
		}
	}()

	var wg sync.WaitGroup
	const rounds = 3
	for r := 0; r < rounds; r++ {
		for _, s := range srcs {
			wg.Add(2)
			go func(s Vertex) {
				defer wg.Done()
				res := DeltaSteppingWithOptions(g, s, 4, SSSPOptions{Recorder: rec})
				if res.Err != nil {
					t.Errorf("delta-stepping from %d: %v", s, res.Err)
					return
				}
				sameInt64(t, "delta-stepping", res.Dist, wantDelta[s])
			}(s)
			go func(s Vertex) {
				defer wg.Done()
				res := WBFSWithOptions(g, s, SSSPOptions{Recorder: rec})
				if res.Err != nil {
					t.Errorf("wbfs from %d: %v", s, res.Err)
					return
				}
				sameInt64(t, "wbfs", res.Dist, wantWBFS[s])
			}(s)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := KCoreWithOptions(g, KCoreOptions{Recorder: rec})
			if res.Err != nil {
				t.Errorf("kcore: %v", res.Err)
				return
			}
			for i := range wantCore {
				if res.Coreness[i] != wantCore[i] {
					t.Errorf("kcore: diverged at vertex %d: got %d want %d",
						i, res.Coreness[i], wantCore[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()
}
