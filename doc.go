// Package julienne is a Go implementation of the Julienne framework
// for parallel graph algorithms using work-efficient bucketing
// (Dhulipala, Blelloch and Shun, SPAA 2017).
//
// Julienne extends the Ligra shared-memory graph-processing model with
// a bucketing structure that maintains a dynamic mapping from integer
// identifiers to ordered buckets and supports extracting the next
// non-empty bucket and moving batches of identifiers between buckets,
// all work-efficiently. On top of it the package provides the paper's
// four bucketing-based applications — k-core (coreness), ∆-stepping,
// weighted BFS and (1+ε)-approximate set cover — together with every
// baseline its evaluation compares against, graph generators, Ligra+
// style byte-compressed graphs, and an experiment harness that
// regenerates every table and figure of the paper.
//
// # Quick start
//
//	g := julienne.RMAT(1<<16, 1<<20, true, 42) // undirected social-style graph
//	cores := julienne.KCore(g)                 // work-efficient coreness
//	wg := julienne.LogWeights(g, 1)            // weights in [1, log n)
//	dist := julienne.WBFS(wg, 0)               // weighted BFS from vertex 0
//
// # Architecture
//
// The facade re-exports the stable surface of the internal packages:
//
//   - internal/bucket — the bucketing structure (the paper's §3)
//   - internal/ligra — vertexSubsets, edgeMap and friends (§2.1)
//   - internal/graph, internal/compress — CSR and compressed graphs
//   - internal/gen, internal/graphio — workload generators and I/O
//   - internal/algo/... — the four applications and their baselines
//   - internal/experiments — the Table/Figure reproduction drivers
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for a full
// paper-vs-measured comparison.
package julienne
