// Known-bad fixture for the julvet smoke test: the multichecker must
// exit non-zero when run over this tree.
package bad

import (
	"math/rand"
	"time"
)

func Jittery() time.Time {
	_ = rand.Int63()
	return time.Now()
}
