// Known-bad fixture for the serving-contract analyzers: the cancel
// func escapes one path, so julvet must exit non-zero with a
// ctxguard diagnostic when run over this tree.
package badctx

import (
	"context"
	"time"
)

func leakyDeadline(parent context.Context, fast bool) context.Context {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	if fast {
		cancel()
	}
	return ctx
}
