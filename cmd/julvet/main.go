// Command julvet is julienne's multichecker: it runs the custom
// analyzers of internal/analysis (atomicmix, atomicalign, arenaalias,
// scratchpair, tagdrift, norandtime, panicguard, ctxguard, semabalance,
// obsnames, statusmap) over the packages matching its arguments and
// exits non-zero if any diagnostic survives the //lint:ignore
// directives. Since PR 10 the run is interprocedural: the driver builds
// a unit-wide fact store so obligations are followed through helper
// calls, and stale suppressions are reported by the unuseddirective
// driver check. `make lint` runs it over ./... next to `go vet` (which
// contributes the stock copylocks/atomic/nilfunc passes the vendorless
// build cannot import from x/tools).
//
// Usage:
//
//	julvet [flags] [packages]
//
//	-tags tags   build tags for package selection (e.g. julienne_debug,
//	             race) so tag-gated files are analyzed under both halves
//	-run list    comma-separated analyzer subset (default: all)
//	-dir path    analyze a GOPATH-style source tree instead of module
//	             packages (used by the smoke test against the known-bad
//	             fixtures under internal/analysis/testdata)
//	-json        emit diagnostics as a JSON array on stdout (for the
//	             nightly CI sweep)
//	-list        print the registered analyzers and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"julienne/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("julvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tags := fs.String("tags", "", "build tags forwarded to go list")
	runList := fs.String("run", "", "comma-separated analyzer subset (default all)")
	dir := fs.String("dir", "", "analyze a GOPATH-style source tree instead of module packages")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON on stdout")
	list := fs.Bool("list", false, "print registered analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *runList != "" {
		subset, valid := analysis.ByName(strings.Split(*runList, ","))
		if subset == nil {
			fmt.Fprintf(stderr, "julvet: unknown analyzer in -run=%s (valid: %s)\n", *runList, strings.Join(valid, ","))
			return 2
		}
		analyzers = subset
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var pkgs []*analysis.Package
	var err error
	if *dir != "" {
		pkgs, err = analysis.LoadDir(*dir)
	} else {
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		pkgs, err = analysis.Load(analysis.LoadConfig{Tags: *tags}, patterns...)
	}
	if err != nil {
		fmt.Fprintf(stderr, "julvet: %v\n", err)
		return 2
	}

	diags := analysis.RunAnalyzers(pkgs, analyzers)
	if *jsonOut {
		type jsonDiag struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "julvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "julvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
