package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"julienne/internal/analysis"
)

// capture runs the julvet driver with the given arguments, returning
// its exit code and the two output streams.
func capture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	dir := t.TempDir()
	open := func(name string) *os.File {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	outF, errF := open("stdout"), open("stderr")
	defer outF.Close()
	defer errF.Close()
	code := run(args, outF, errF)
	read := func(f *os.File) string {
		b, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	return code, read(outF), read(errF)
}

// TestListRegistersAllAnalyzers pins that the multichecker builds with
// the full suite registered: every analyzer in the registry appears in
// -list output.
func TestListRegistersAllAnalyzers(t *testing.T) {
	code, out, stderr := capture(t, "-list")
	if code != 0 {
		t.Fatalf("julvet -list exited %d, stderr:\n%s", code, stderr)
	}
	all := analysis.All()
	if len(all) < 6 {
		t.Fatalf("registry has %d analyzers, want at least the 6 from the issue", len(all))
	}
	for _, a := range all {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing analyzer %q:\n%s", a.Name, out)
		}
	}
}

// TestKnownBadFixtureFails pins the end-to-end contract: julvet exits
// non-zero on a tree with violations and names the analyzer in its
// output.
func TestKnownBadFixtureFails(t *testing.T) {
	code, out, stderr := capture(t, "-dir", "testdata/src")
	if code != 1 {
		t.Fatalf("julvet -dir testdata/src exited %d, want 1; stdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
	for _, frag := range []string{"[julvet/norandtime]", "bad.go", "[julvet/ctxguard]", "badctx.go"} {
		if !strings.Contains(out, frag) {
			t.Errorf("diagnostic output missing %q:\n%s", frag, out)
		}
	}
}

// TestJSONOutput pins the machine-readable mode the nightly CI job
// consumes: exit 1 on findings, stdout a JSON array with stable field
// names, human text kept off stdout.
func TestJSONOutput(t *testing.T) {
	code, out, stderr := capture(t, "-json", "-dir", "testdata/src")
	if code != 1 {
		t.Fatalf("julvet -json exited %d, want 1; stderr:\n%s", code, stderr)
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out)
	}
	byAnalyzer := map[string]bool{}
	for _, d := range diags {
		if d.Analyzer == "" || d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("diagnostic with missing fields: %+v", d)
		}
		byAnalyzer[d.Analyzer] = true
	}
	for _, want := range []string{"norandtime", "ctxguard"} {
		if !byAnalyzer[want] {
			t.Errorf("JSON output missing a %s finding: %s", want, out)
		}
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("summary line missing from stderr:\n%s", stderr)
	}
}

// TestAnalyzerSubset pins -run: restricting to an analyzer that has no
// findings on the bad fixture must exit clean.
func TestAnalyzerSubset(t *testing.T) {
	code, out, stderr := capture(t, "-run", "arenaalias", "-dir", "testdata/src")
	if code != 0 {
		t.Fatalf("julvet -run arenaalias exited %d; stdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
}

// TestUnknownAnalyzer pins the usage-error exit code.
func TestUnknownAnalyzer(t *testing.T) {
	code, _, stderr := capture(t, "-run", "nosuch")
	if code != 2 {
		t.Fatalf("julvet -run nosuch exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message:\n%s", stderr)
	}
}
