// Command servedload drives a running served instance with concurrent
// queries and reports per-endpoint throughput and latency quantiles —
// the source of BENCH_serve.json and the serve-smoke check.
//
// Usage:
//
//	servedload -addr 127.0.0.1:8090 [-duration 5s] [-conc 8]
//	           [-mix sssp,wbfs,coreness] [-sources 64] [-seed 2017]
//	           [-jobs] [-out BENCH_serve.json]
//
// Sources are drawn from a bounded pool so the server's coalescing and
// cache paths are exercised alongside cold computations; -sources 0
// draws from the whole vertex range. Backpressure responses (429/503)
// are counted separately from errors — under deliberate overload they
// are the server working as designed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"julienne/internal/harness"
	"julienne/internal/obs"
	"julienne/internal/rng"
)

type endpointStats struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	Rejected int64   `json:"rejected"` // 429/503 backpressure
	Timeouts int64   `json:"timeouts"` // 504 deadline cancellations
	QPS      float64 `json:"qps"`
	P50Ns    int64   `json:"p50_ns"`
	P99Ns    int64   `json:"p99_ns"`
	MaxNs    int64   `json:"max_ns"`
}

type report struct {
	Addr        string                    `json:"addr"`
	DurationSec float64                   `json:"duration_sec"`
	Concurrency int                       `json:"concurrency"`
	Endpoints   map[string]*endpointStats `json:"endpoints"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "served address (host:port)")
	duration := flag.Duration("duration", 5*time.Second, "how long to drive load")
	conc := flag.Int("conc", 8, "concurrent client workers")
	mix := flag.String("mix", "sssp,wbfs,coreness", "comma-separated endpoint mix workers cycle through")
	sources := flag.Int("sources", 64, "distinct source vertices to draw from (0 = whole graph)")
	seed := flag.Uint64("seed", 2017, "source-sampling seed")
	jobs := flag.Bool("jobs", false, "also submit one setcover and one densest job and poll them")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	flag.Parse()

	base := "http://" + *addr
	n, err := vertexCount(base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "servedload: %s: %v\n", base, err)
		os.Exit(2)
	}
	pool := *sources
	if pool <= 0 || pool > n {
		pool = n
	}

	endpoints := strings.Split(*mix, ",")
	rec := obs.NewRecorder()
	stats := map[string]*endpointStats{}
	var mu sync.Mutex
	for _, ep := range endpoints {
		stats[ep] = &endpointStats{}
	}

	client := &http.Client{}
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	var wg sync.WaitGroup
	elapsed := harness.Time(func() {
		for w := 0; w < *conc; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				r := rng.New(*seed + uint64(worker))
				for i := 0; ctx.Err() == nil; i++ {
					ep := endpoints[i%len(endpoints)]
					src := r.IntN(pool)
					var url string
					switch ep {
					case "sssp":
						url = fmt.Sprintf("%s/sssp?src=%d", base, src)
					case "wbfs":
						url = fmt.Sprintf("%s/wbfs?src=%d", base, src)
					case "coreness":
						url = fmt.Sprintf("%s/coreness?v=%d", base, src)
					default:
						fmt.Fprintf(os.Stderr, "servedload: unknown endpoint %q in -mix\n", ep)
						os.Exit(2)
					}
					start := rec.Clock()
					status, err := get(ctx, client, url)
					if err == nil && status == http.StatusOK {
						// Quantiles cover served queries only; rejected
						// (429/503) and timed-out (504) requests are
						// counted but would skew the latency picture.
						rec.ObserveSince(histFor(ep), start)
					}
					mu.Lock()
					st := stats[ep]
					st.Requests++
					switch {
					case err != nil && ctx.Err() != nil:
						st.Requests-- // cut off by the run deadline, not a sample
					case err != nil:
						st.Errors++
					case status == http.StatusTooManyRequests, status == http.StatusServiceUnavailable:
						st.Rejected++
					case status == http.StatusGatewayTimeout:
						st.Timeouts++
					case status != http.StatusOK:
						st.Errors++
					}
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
	})

	if *jobs {
		driveJobs(base, client)
	}

	rep := report{Addr: *addr, DurationSec: elapsed.Seconds(), Concurrency: *conc, Endpoints: stats}
	for _, ep := range endpoints {
		st := stats[ep]
		ok := st.Requests - st.Errors - st.Rejected
		if elapsed > 0 {
			st.QPS = float64(ok) / elapsed.Seconds()
		}
		sum := rec.HistSummary(histFor(ep))
		st.P50Ns, st.P99Ns, st.MaxNs = sum.P50, sum.P99, sum.Max
	}
	writeReport(rep, *out)
}

// histFor maps an endpoint to the well-known latency-histogram name
// the driver observes its client-side latencies under.
func histFor(ep string) string {
	switch ep {
	case "sssp":
		return obs.HistServeSSSPNs
	case "wbfs":
		return obs.HistServeWBFSNs
	case "coreness":
		return obs.HistServeCorenessNs
	default:
		return obs.HistOpLatencyNs
	}
}

func writeReport(rep report, out string) {
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "servedload: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "servedload: %v\n", err)
		os.Exit(2)
	}
}

func get(ctx context.Context, client *http.Client, url string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// vertexCount asks /healthz for the graph size.
func vertexCount(base string) (int, error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var h struct {
		Vertices int `json:"vertices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return 0, err
	}
	if h.Vertices <= 0 {
		return 0, fmt.Errorf("server reports %d vertices", h.Vertices)
	}
	return h.Vertices, nil
}

// driveJobs submits one of each async job and polls both to a
// terminal state, printing the outcomes to stderr.
func driveJobs(base string, client *http.Client) {
	ids := []string{}
	for _, kind := range []string{"setcover", "densest"} {
		resp, err := client.Post(base+"/jobs/"+kind, "", nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "servedload: submit %s: %v\n", kind, err)
			continue
		}
		var info struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil || info.ID == "" {
			fmt.Fprintf(os.Stderr, "servedload: submit %s: status %d\n", kind, resp.StatusCode)
			continue
		}
		ids = append(ids, info.ID)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for {
			resp, err := client.Get(base + "/jobs/" + id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "servedload: poll %s: %v\n", id, err)
				return
			}
			var info struct {
				Status string `json:"status"`
			}
			err = json.NewDecoder(resp.Body).Decode(&info)
			resp.Body.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "servedload: poll %s: %v\n", id, err)
				return
			}
			if info.Status == "done" || info.Status == "failed" || info.Status == "canceled" {
				fmt.Fprintf(os.Stderr, "servedload: %s -> %s\n", id, info.Status)
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
}
