// Command bucketbench runs the §3.4 bucket-structure microbenchmark
// and prints the Figure 1 series: throughput (identifiers/second)
// against average identifiers per round, for a sweep of bucket counts
// and identifier counts.
//
// Usage:
//
//	bucketbench [-buckets 128,256,512,1024] [-ids 1024,...] [-semisort]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"julienne/internal/bucket"
	"julienne/internal/harness"
	"julienne/internal/microbench"
)

func parseList(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("bad list element %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	bucketsFlag := flag.String("buckets", "128,256,512,1024", "bucket counts to sweep")
	idsFlag := flag.String("ids", "1024,8192,65536,524288", "identifier counts to sweep")
	semisort := flag.Bool("semisort", false, "use the semisort updateBuckets path")
	seed := flag.Uint64("seed", 2017, "workload seed")
	flag.Parse()

	bucketCounts, err := parseList(*bucketsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	idCounts, err := parseList(*idsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	t := harness.NewTable("buckets", "identifiers", "rounds", "avg ids/round", "throughput ids/s", "time")
	var pts []microbench.Point
	for _, b := range bucketCounts {
		for _, n := range idCounts {
			p := microbench.Run(microbench.Config{
				Identifiers: n, Buckets: b, Seed: *seed,
				Options: bucket.Options{Semisort: *semisort},
			})
			pts = append(pts, p)
			t.AddRow(b, n, p.Rounds, p.AvgPerRound, p.Throughput, p.Elapsed)
		}
	}
	t.Render(os.Stdout)
	sum := microbench.Summarize(pts)
	fmt.Printf("\npeak throughput: %.3g ids/s; half-performance length: %.3g ids/round\n",
		sum.PeakThroughput, sum.HalfLength)
}
