// Command gengraph generates a synthetic graph and writes it to a
// file in Ligra text (.adj/.txt) or binary format.
//
// Usage:
//
//	gengraph -out graph.bin [graph flags]
//	gengraph -out web.adj -gen chunglu -n 100000 -m 2000000 -weights log
package main

import (
	"flag"
	"fmt"
	"os"

	"julienne/internal/cli"
	"julienne/internal/graphio"
)

func main() {
	out := flag.String("out", "", "output path (.adj/.txt = Ligra text, else binary)")
	gf := cli.Register(flag.CommandLine)
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "gengraph: -out is required")
		os.Exit(2)
	}
	g, err := gf.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := graphio.SaveFile(*out, g); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %s\n", *out, cli.Describe(g))
}
