// Command kcore computes the coreness (k-core) decomposition of an
// undirected graph and prints summary statistics.
//
// Usage:
//
//	kcore [-impl julienne|ligra|bz] [graph flags]
//	      [-trace out.json] [-stats] [-pprof :6060]
//
// Examples:
//
//	kcore -gen rmat -n 65536 -m 1048576
//	kcore -file web.adj -impl bz
//	kcore -gen rmat -trace kcore.json -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"julienne/internal/algo/kcore"
	"julienne/internal/cli"
	"julienne/internal/graph"
	"julienne/internal/harness"
)

func main() {
	impl := flag.String("impl", "julienne", "implementation: julienne|ligra|bz")
	hist := flag.Int("hist", 10, "print the top-K coreness histogram buckets")
	extract := flag.Int("k", -1, "also extract the k-core subgraph for this k (-1 = max core)")
	timeout := flag.Duration("timeout", 0, "stop the run after this long, exit 3 with partial stats (julienne impl; 0 = no limit)")
	gf := cli.Register(flag.CommandLine)
	of := cli.RegisterObs(flag.CommandLine)
	flag.Parse()
	defer of.CrashDump()

	g, err := gf.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if !g.Symmetric() {
		g = graph.Symmetrized(g)
	}
	fmt.Println(cli.Describe(g))

	rec := of.Recorder()
	var cores []uint32
	var rounds int64 = -1
	var runErr error
	deadline := harness.DeadlineIn(*timeout)
	elapsed := harness.Time(func() {
		switch *impl {
		case "julienne":
			res := kcore.Coreness(g, kcore.Options{Recorder: rec, Deadline: deadline})
			cores, rounds, runErr = res.Coreness, res.Rounds, res.Err
		case "ligra":
			res := kcore.CorenessLigra(g)
			cores, rounds = res.Coreness, res.Rounds
		case "bz":
			cores = kcore.CorenessBZ(g)
		default:
			fmt.Fprintf(os.Stderr, "unknown -impl %q\n", *impl)
			os.Exit(2)
		}
	})

	of.ObserveOp(elapsed)
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
		of.PrintCanceled(os.Stderr, runErr)
		fmt.Printf("impl=%s time=%v PARTIAL rounds=%d\n", *impl, elapsed, rounds)
		os.Exit(3)
	}

	kmax := kcore.MaxCoreness(cores)
	counts := make([]int, kmax+1)
	for _, c := range cores {
		counts[c]++
	}
	fmt.Printf("impl=%s time=%v kmax=%d", *impl, elapsed, kmax)
	if rounds >= 0 {
		fmt.Printf(" rounds(rho)=%d", rounds)
	}
	fmt.Println()
	printed := 0
	for k := int(kmax); k >= 0 && printed < *hist; k-- {
		if counts[k] == 0 {
			continue
		}
		fmt.Printf("  coreness %d: %d vertices\n", k, counts[k])
		printed++
	}

	if *extract != 0 {
		k := uint32(*extract)
		if *extract < 0 {
			k = kmax
		}
		sub := kcore.ExtractCore(g, cores, k)
		fmt.Printf("%d-core: %d vertices, %d edges, %d connected core(s)\n",
			k, sub.Graph.NumVertices(), sub.Graph.NumEdges()/2, sub.NumCores)
	}

	if err := of.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	of.Wait()
}
