// Command served is the graph analytics service: it loads (or
// generates) one graph at startup and serves concurrent point queries
// and async analytics jobs over JSON/HTTP (DESIGN.md §12).
//
// Usage:
//
//	served -addr :8090 -file graph.bin [-workers 8] [-queue 32]
//	       [-cache 64] [-query-timeout 10s] [-delta 32768]
//	       [graph flags: -gen/-n/-m/-symmetric/-weights ...]
//
// Endpoints (see GET / for the index):
//
//	GET  /sssp?src=N[&delta=D][&fusion=1][&target=M][&timeout_ms=T]
//	GET  /wbfs?src=N            point shortest paths (coalesced, cached)
//	GET  /coreness?v=N          coreness lookup (computed once, cached)
//	POST /jobs/setcover         async jobs with GET /jobs/{id} polling
//	POST /jobs/densest
//	GET  /metrics /debug/obs    Prometheus text + JSON debug surface
//
// Saturation returns typed backpressure: 429 (queue full) and 503
// (draining); queries that outlive their deadline return 504 with the
// kernel's partial-progress stats. SIGINT/SIGTERM drains gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"julienne/internal/cli"
	"julienne/internal/gen"
	"julienne/internal/obs"
	"julienne/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address (use :0 to pick a free port)")
	workers := flag.Int("workers", 0, "max concurrently-executing queries (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max queries waiting for a slot before 429 (0 = 4x workers)")
	cache := flag.Int("cache", 64, "SSSP result cache entries")
	jobWorkers := flag.Int("job-workers", 1, "async job worker pool size")
	queryTimeout := flag.Duration("query-timeout", 10*time.Second, "default per-query deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "clamp for client-supplied ?timeout_ms")
	delta := flag.Int64("delta", 32768, "default delta for /sssp")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain budget before in-flight queries are canceled")
	gf := cli.Register(flag.CommandLine)
	flag.Parse()

	g, err := gf.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if !g.Weighted() {
		// SSSP endpoints need weights; default to the paper's wBFS
		// weighting, as cmd/sssp does.
		g = gen.LogWeights(g, *gf.Seed+1)
	}
	fmt.Fprintln(os.Stderr, "served:", cli.Describe(g))

	rec := obs.NewRecorder()
	srv := serve.New(serve.Config{
		Graph:          g,
		Recorder:       rec,
		MaxInFlight:    *workers,
		MaxQueued:      *queue,
		CacheSize:      *cache,
		JobWorkers:     *jobWorkers,
		DefaultTimeout: *queryTimeout,
		MaxTimeout:     *maxTimeout,
		DefaultDelta:   *delta,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "served: listen on %s: %v\n", *addr, err)
		os.Exit(2)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "served: serving http://%s/ (metrics on /metrics)\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		fmt.Fprintf(os.Stderr, "served: http server: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "served: %v: draining (budget %v)\n", s, *drain)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections, drain in-flight queries (canceling
	// them if the budget runs out), then close the listener fully.
	_ = srv.Close(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "served: shutdown: %v\n", err)
	}
	_ = httpSrv.Close()
	fmt.Fprintln(os.Stderr, "served: drained, exiting")
}
