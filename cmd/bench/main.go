// Command bench regenerates the repository's performance baseline:
//
//	bench [-smoke] [-out dir] [-reps n] [-seed s] [-http :9090] [-assert-fusion]
//
// It measures the bucket structure's hot paths and the four bucketed
// applications (k-core, ∆-stepping, wBFS, approximate set cover) at
// GOMAXPROCS ∈ {1, NumCPU} and writes BENCH_bucket.json and
// BENCH_algos.json into -out. Full-budget runs (the default; `make
// bench`) additionally re-measure the pre-arena go-test benchmarks so
// the files carry a before/after allocator comparison; -smoke (`make
// bench-smoke`) shrinks inputs to CI size and skips the comparison.
//
// The algos report includes the bucket-fusion ablation on the grid
// family (wbfs-fused, delta-stepping-fused vs their unfused
// counterparts; DESIGN.md §11). -assert-fusion turns the ablation into
// a gate: the run fails unless the fused entries extracted fewer
// bucket rounds (obs bucket.buckets_returned) than the unfused ones,
// with wbfs at least 3x fewer. CI's bench-smoke job runs with this
// flag.
//
// With -http the suite's merged telemetry (counters plus round-latency
// histograms from every instrumented run) is served live on the obs
// debug surface (/metrics, /debug/obs, /debug/pprof/), and the process
// keeps serving after the reports are written until interrupted.
//
// DESIGN.md §7 documents the report schema and the measurement
// methodology; cmd/experiments produces the paper-style tables and
// figures instead.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"julienne/internal/bench"
	"julienne/internal/obs"
)

func main() {
	smoke := flag.Bool("smoke", false, "CI-sized inputs, no before/after re-measurement")
	out := flag.String("out", ".", "output directory for BENCH_*.json")
	reps := flag.Int("reps", 0, "timing repetitions per configuration (default 5, 3 with -smoke)")
	seed := flag.Uint64("seed", 0, "workload seed (default 2017)")
	httpAddr := flag.String("http", "", "serve live /metrics, /debug/obs, /debug/pprof on this address while benchmarking; keeps serving after the run until interrupted")
	assertFusion := flag.Bool("assert-fusion", false, "fail unless the fused grid-family entries extract fewer bucket rounds than their unfused counterparts (wbfs: at least 3x fewer), judged by the obs bucket.buckets_returned counter")
	flag.Parse()

	cfg := bench.Config{Smoke: *smoke, Reps: *reps, Seed: *seed}
	serving := ""
	if *httpAddr != "" {
		cfg.Live = obs.NewRecorder()
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: -http listen on %s: %v\n", *httpAddr, err)
			os.Exit(2)
		}
		serving = ln.Addr().String()
		srv := &http.Server{Handler: obs.ServeMux(cfg.Live)}
		go func() {
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "bench: http server on %s: %v\n", serving, err)
			}
		}()
		fmt.Fprintf(os.Stderr, "bench: serving http://%s/metrics\n", serving)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	write := func(name string, rep *bench.Report) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		if err := rep.Write(f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s (%d results)\n", path, len(rep.Results))
		fmt.Print(bench.FormatSummary(rep))
	}
	write("BENCH_bucket.json", bench.Bucket(cfg))
	algos := bench.Algos(cfg)
	write("BENCH_algos.json", algos)
	if *assertFusion {
		if err := bench.CheckFusionAblation(algos); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("fusion ablation: fused grid entries extract fewer bucket rounds than unfused (wbfs >= 3x)")
	}

	if serving != "" {
		fmt.Fprintf(os.Stderr, "bench: run complete; still serving http://%s (interrupt to exit)\n", serving)
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
}
