// Command setcover solves approximate set cover on a random bipartite
// instance (or one loaded from a file whose first -sets vertices are
// the sets).
//
// Usage:
//
//	setcover [-impl julienne|pbbs|greedy] [-sets S -elements E -cover C]
//	         [-epsilon 0.01] [-file F] [-seed N]
//	         [-trace out.json] [-stats] [-pprof :6060]
package main

import (
	"flag"
	"fmt"
	"os"

	"julienne/internal/algo/setcover"
	"julienne/internal/cli"
	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/graphio"
	"julienne/internal/harness"
)

func main() {
	impl := flag.String("impl", "julienne", "implementation: julienne|pbbs|greedy")
	sets := flag.Int("sets", 1<<12, "number of sets (generator, or prefix size for -file)")
	elements := flag.Int("elements", 1<<15, "number of elements (generator)")
	cover := flag.Int("cover", 4, "average sets covering an element (generator)")
	eps := flag.Float64("epsilon", 0.01, "bucketing granularity epsilon")
	file := flag.String("file", "", "load bipartite instance from graph file")
	seed := flag.Uint64("seed", 2017, "generator seed")
	timeout := flag.Duration("timeout", 0, "stop the run after this long, exit 3 with partial stats (julienne impl; 0 = no limit)")
	of := cli.RegisterObs(flag.CommandLine)
	flag.Parse()
	defer of.CrashDump()

	var g *graph.CSR
	numSets := *sets
	if *file != "" {
		var err error
		g, err = graphio.LoadFile(*file, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		inst := gen.SetCover(*sets, *elements, *cover, *seed)
		g, numSets = inst.Graph, inst.Sets
	}
	fmt.Printf("instance: sets=%d elements=%d M=%d\n",
		numSets, g.NumVertices()-numSets, g.NumEdges())

	rec := of.Recorder()
	opt := setcover.Options{Epsilon: *eps, Recorder: rec,
		Deadline: harness.DeadlineIn(*timeout)}
	var res setcover.Result
	elapsed := harness.Time(func() {
		switch *impl {
		case "julienne":
			res = setcover.Approx(g, numSets, opt)
		case "pbbs":
			res = setcover.ApproxPBBS(g, numSets, opt)
		case "greedy":
			res = setcover.Greedy(g, numSets)
		default:
			fmt.Fprintf(os.Stderr, "unknown -impl %q\n", *impl)
			os.Exit(2)
		}
	})

	of.ObserveOp(elapsed)
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, res.Err)
		of.PrintCanceled(os.Stderr, res.Err)
		fmt.Printf("impl=%s PARTIAL cover_size=%d rounds=%d sets_inspected=%d\n",
			*impl, res.CoverSize, res.Rounds, res.SetsInspected)
		os.Exit(3)
	}

	if err := setcover.Validate(g, numSets, res.InCover); err != nil {
		fmt.Fprintln(os.Stderr, "INVALID COVER:", err)
		os.Exit(1)
	}
	fmt.Printf("impl=%s time=%v cover_size=%d rounds=%d sets_inspected=%d (cover valid)\n",
		*impl, elapsed, res.CoverSize, res.Rounds, res.SetsInspected)

	if err := of.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	of.Wait()
}
