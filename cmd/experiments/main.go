// Command experiments regenerates the paper's evaluation artifacts:
// every table (1–3) and figure (1–5) plus the design-choice ablations,
// printed as formatted tables.
//
// Usage:
//
//	experiments [-exp all|table1|table2|table3|fig1..fig5|ablations]
//	            [-scale small|medium|large] [-reps N] [-seed S]
//	            [-trace out.json] [-stats] [-pprof :6060]
//
// A full run at -scale medium is recorded in EXPERIMENTS.md. For the
// allocator-focused performance baseline (BENCH_*.json with per-round
// bytes and bucket-traffic counters), use cmd/bench / `make bench`
// instead; DESIGN.md §7 describes that methodology.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"julienne/internal/cli"
	"julienne/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: "+strings.Join(experiments.IDs(), "|"))
	scaleFlag := flag.String("scale", "medium", "input scale: small|medium|large")
	reps := flag.Int("reps", 3, "timing repetitions (median is reported)")
	seed := flag.Uint64("seed", 2017, "workload seed")
	of := cli.RegisterObs(flag.CommandLine)
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("julienne experiments — scale=%s reps=%d seed=%d cpus=%d\n",
		*scaleFlag, *reps, *seed, runtime.NumCPU())
	s := &experiments.Suite{W: os.Stdout, Scale: scale, Reps: *reps, Seed: *seed,
		Rec: of.Recorder()}
	if err := s.Run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := of.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
