// Command sssp solves single-source shortest paths with any of the
// implementations in this repository.
//
// Usage:
//
//	sssp [-algo wbfs|delta|delta-lh|gap-bins|bellman-ford|dijkstra|dial]
//	     [-src V] [-delta D] [-fuse-frontier F] [-fuse-span S] [graph flags]
//	     [-trace out.json] [-stats] [-pprof :6060]
//
// Unweighted inputs get the paper's wBFS weighting ([1, log n)) unless
// -weights overrides it.
package main

import (
	"flag"
	"fmt"
	"os"

	"julienne/internal/algo/sssp"
	"julienne/internal/bucket"
	"julienne/internal/cli"
	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/harness"
)

func main() {
	algo := flag.String("algo", "delta", "algorithm: wbfs|delta|delta-lh|gap-bins|bellman-ford|dijkstra|dial")
	src := flag.Uint("src", 0, "source vertex")
	delta := flag.Int64("delta", 32768, "delta parameter (delta-stepping variants)")
	fuseFrontier := flag.Int("fuse-frontier", 0, "bucket fusion: fuse consecutive buckets while the combined frontier stays at or under this size (wbfs/delta/delta-lh; 0 = fusion off)")
	fuseSpan := flag.Int("fuse-span", 0, "bucket fusion: cap the fused run at this many consecutive bucket ids (0 = unbounded; only meaningful with -fuse-frontier)")
	timeout := flag.Duration("timeout", 0, "stop the run after this long, exit 3 with partial stats (bucketed algos; 0 = no limit)")
	gf := cli.Register(flag.CommandLine)
	of := cli.RegisterObs(flag.CommandLine)
	flag.Parse()
	defer of.CrashDump()

	g, err := gf.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if !g.Weighted() {
		g = gen.LogWeights(g, *gf.Seed+1)
	}
	fmt.Println(cli.Describe(g))

	rec := of.Recorder()
	opt := sssp.Options{
		Recorder: rec,
		Deadline: harness.DeadlineIn(*timeout),
		Fusion:   bucket.Fusion{MaxFrontier: *fuseFrontier, MaxSpan: *fuseSpan},
	}
	var res sssp.Result
	s := graph.Vertex(*src)
	elapsed := harness.Time(func() {
		switch *algo {
		case "wbfs":
			res = sssp.WBFS(g, s, opt)
		case "delta":
			res = sssp.DeltaStepping(g, s, *delta, opt)
		case "delta-lh":
			res = sssp.DeltaSteppingLH(g, s, *delta, opt)
		case "gap-bins":
			res = sssp.DeltaSteppingBins(g, s, *delta)
		case "bellman-ford":
			res = sssp.BellmanFord(g, s)
		case "dijkstra":
			res = sssp.DijkstraHeap(g, s)
		case "dial":
			res = sssp.Dial(g, s)
		default:
			fmt.Fprintf(os.Stderr, "unknown -algo %q\n", *algo)
			os.Exit(2)
		}
	})

	of.ObserveOp(elapsed)
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, res.Err)
		of.PrintCanceled(os.Stderr, res.Err)
		fmt.Printf("algo=%s src=%d PARTIAL rounds=%d relaxations=%d edges=%d\n",
			*algo, s, res.Rounds, res.Relaxations, res.EdgesTraversed)
		os.Exit(3)
	}

	reached, maxDist, sum := 0, int64(0), int64(0)
	for _, d := range res.Dist {
		if d == sssp.Unreachable {
			continue
		}
		reached++
		sum += d
		if d > maxDist {
			maxDist = d
		}
	}
	fmt.Printf("algo=%s src=%d time=%v rounds=%d relaxations=%d\n",
		*algo, s, elapsed, res.Rounds, res.Relaxations)
	fmt.Printf("reached=%d/%d max_dist=%d avg_dist=%.1f\n",
		reached, len(res.Dist), maxDist, float64(sum)/float64(max(reached, 1)))

	if err := of.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	of.Wait()
}
