// Command densest finds an approximately densest subgraph with the
// bucketed greedy peel (Charikar 2-approximation) or the parallel
// batch peel (Bahmani (2+2ε)-approximation).
//
// Usage:
//
//	densest [-impl charikar|batch] [-epsilon 0.1] [graph flags]
//	        [-trace out.json] [-stats] [-pprof :6060] [-http :9090]
package main

import (
	"flag"
	"fmt"
	"os"

	"julienne/internal/algo/densest"
	"julienne/internal/cli"
	"julienne/internal/graph"
	"julienne/internal/harness"
)

func main() {
	impl := flag.String("impl", "charikar", "implementation: charikar|batch")
	eps := flag.Float64("epsilon", 0.1, "batch peel epsilon")
	timeout := flag.Duration("timeout", 0, "stop the run after this long, exit 3 with partial stats (0 = no limit)")
	gf := cli.Register(flag.CommandLine)
	of := cli.RegisterObs(flag.CommandLine)
	flag.Parse()
	defer of.CrashDump()

	g, err := gf.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if !g.Symmetric() {
		g = graph.Symmetrized(g)
	}
	fmt.Println(cli.Describe(g))

	var res densest.Result
	dopt := densest.Options{Recorder: of.Recorder(), Deadline: harness.DeadlineIn(*timeout)}
	elapsed := harness.Time(func() {
		switch *impl {
		case "charikar":
			res = densest.CharikarWithOptions(g, dopt)
		case "batch":
			res = densest.PeelBatchWithOptions(g, *eps, dopt)
		default:
			fmt.Fprintf(os.Stderr, "unknown -impl %q\n", *impl)
			os.Exit(2)
		}
	})

	of.ObserveOp(elapsed)
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, res.Err)
		of.PrintCanceled(os.Stderr, res.Err)
		fmt.Printf("impl=%s PARTIAL rounds=%d density=%.3f\n", *impl, res.Rounds, res.Density)
		os.Exit(3)
	}

	whole := float64(g.NumEdges()) / 2 / float64(max(g.NumVertices(), 1))
	fmt.Printf("impl=%s time=%v rounds=%d\n", *impl, elapsed, res.Rounds)
	fmt.Printf("densest subgraph: %d vertices, density %.3f (whole graph: %.3f)\n",
		len(res.Vertices), res.Density, whole)
	// Cross-check the reported density.
	if recount := densest.Density(g, res.Vertices); recount != res.Density {
		fmt.Fprintf(os.Stderr, "WARNING: density mismatch (%.6f recounted)\n", recount)
		os.Exit(1)
	}

	if err := of.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	of.Wait()
}
